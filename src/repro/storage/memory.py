"""The hash-indexed in-memory backend.

The evaluation substrate the library grew up on (formerly
``repro.core.database.Database``, which is now a thin alias of this
class).  Lookups needed by backtracking evaluation and by the semi-join
passes of Yannakakis' algorithm are served by two indexes:

* a per-relation fact list, and
* a per-``(relation, position, value)`` inverted index.

:meth:`MemoryBackend.match` answers "which facts unify with this
partially instantiated atom?" in time proportional to the smallest
candidate posting list, which is the inner loop of all evaluation
algorithms here.  Removal keeps both indexes and the reference-counted
active domain exact, and every successful mutation bumps
:attr:`~repro.storage.base.StorageBackend.data_version`.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..core.atoms import Atom, Schema
from ..core.terms import Constant
from ..exceptions import NotGroundError
from .base import (
    StorageBackend,
    allocate_backend_id,
    fact_matches,
    repeated_positions,
)


class MemoryBackend(StorageBackend):
    """A set of ground atoms with hash indexes.

    Parameters
    ----------
    facts:
        Initial ground atoms.  Non-ground atoms raise
        :class:`~repro.exceptions.NotGroundError`.
    schema:
        Optional explicit schema; when given, every inserted fact is checked
        against it.  When omitted, the schema is inferred incrementally.

    Examples
    --------
    >>> from repro.core.atoms import atom
    >>> db = MemoryBackend([atom("E", 1, 2), atom("E", 2, 3)])
    >>> len(db)
    2
    >>> sorted(db.match(atom("E", "?x", 3)))
    [E(2, 3)]
    >>> db.data_version
    2
    >>> db.discard(atom("E", 1, 2)), db.data_version
    (True, 3)
    """

    __slots__ = (
        "_facts", "_by_relation", "_index", "_schema", "_adom_counts",
        "_explicit_schema", "_version", "_backend_id",
    )

    def __init__(self, facts: Iterable[Atom] = (), schema: Optional[Schema] = None):
        self._facts: Set[Atom] = set()
        self._by_relation: Dict[str, List[Atom]] = {}
        self._index: Dict[Tuple[str, int, Constant], List[Atom]] = {}
        self._schema = schema if schema is not None else Schema()
        self._explicit_schema = schema is not None
        self._adom_counts: Dict[Constant, int] = {}
        self._version = 0
        self._backend_id = allocate_backend_id("memory")
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def backend_id(self) -> str:
        return self._backend_id

    @property
    def data_version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Insert ``fact``; return ``True`` iff it was not already present."""
        if self._insert(fact):
            self._version += 1
            return True
        return False

    def _insert(self, fact: Atom) -> bool:
        """The indexing work of :meth:`add` without the version bump —
        the shared inner step of ``add`` and the bulk :meth:`add_many`."""
        if not fact.is_ground():
            raise NotGroundError("database facts must be ground, got %r" % (fact,))
        if self._explicit_schema:
            self._schema.validate_atom(fact)
        else:
            self._schema.add_relation(fact.relation, fact.arity)
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_relation.setdefault(fact.relation, []).append(fact)
        for pos, value in enumerate(fact.args):
            assert isinstance(value, Constant)
            self._index.setdefault((fact.relation, pos, value), []).append(fact)
            self._adom_counts[value] = self._adom_counts.get(value, 0) + 1
        return True

    def add_many(self, facts: Iterable[Atom]) -> int:
        """Bulk insert with a **single** version bump (see the base
        class): the fast path for shard/partition loads."""
        return len(self._add_new(facts))

    def _add_new(self, facts: Iterable[Atom]) -> List[Atom]:
        """Insert ``facts`` and return exactly the ones that were new,
        bumping the version once for the whole batch.  The sharded
        backend (:mod:`repro.dist`) records the returned list in its
        write-ahead log."""
        new = [fact for fact in facts if self._insert(fact)]
        if new:
            self._version += 1
        return new

    def discard(self, fact: Atom) -> bool:
        """Delete ``fact`` if present, keeping the per-relation list, the
        inverted index, and the active domain exact."""
        if fact not in self._facts:
            return False
        self._facts.remove(fact)
        by_rel = self._by_relation[fact.relation]
        by_rel.remove(fact)
        if not by_rel:
            del self._by_relation[fact.relation]
        for pos, value in enumerate(fact.args):
            key = (fact.relation, pos, value)
            posting = self._index[key]
            posting.remove(fact)
            if not posting:
                del self._index[key]
            remaining = self._adom_counts[value] - 1
            if remaining:
                self._adom_counts[value] = remaining
            else:
                del self._adom_counts[value]
        self._version += 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The (explicit or inferred) schema of this database."""
        return self._schema

    def facts(self, relation: Optional[str] = None) -> Tuple[Atom, ...]:
        """All facts, or the facts of one relation."""
        if relation is None:
            return tuple(self._facts)
        return tuple(self._by_relation.get(relation, ()))

    def relations(self) -> FrozenSet[str]:
        """Relation names with at least one fact."""
        return frozenset(self._by_relation)

    def active_domain(self) -> FrozenSet[Constant]:
        """All constants appearing in some fact (the active domain ``adom``)."""
        return frozenset(self._adom_counts)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MemoryBackend):
            return other._facts == self._facts
        return super().__eq__(other)

    __hash__ = StorageBackend.__hash__  # mutable: raises TypeError

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, pattern: Atom) -> Iterator[Atom]:
        """Yield the facts unifying with ``pattern``.

        ``pattern`` may mix constants and variables; repeated variables
        impose equality between positions.  The smallest inverted-index
        posting list among the constant positions is scanned; with no
        constants the relation's full fact list is scanned.
        """
        candidates = self._candidates(pattern)
        repeated = repeated_positions(pattern)
        for fact in candidates:
            if fact_matches(pattern, fact, repeated):
                yield fact

    def _candidates(self, pattern: Atom) -> Iterable[Atom]:
        """Smallest available posting list of facts that might match."""
        if pattern.relation not in self._by_relation:
            return ()
        best: Optional[List[Atom]] = None
        for pos, value in enumerate(pattern.args):
            if isinstance(value, Constant):
                posting = self._index.get((pattern.relation, pos, value))
                if posting is None:
                    return ()
                if best is None or len(posting) < len(best):
                    best = posting
        if best is None:
            best = self._by_relation[pattern.relation]
        return best

    def copy(self) -> "MemoryBackend":
        """An independent copy sharing no mutable state.  The copy carries
        the schema (explicit schemas stay enforced), all indexes, and the
        current data version — it gets its own ``backend_id``."""
        clone = type(self)(
            schema=self._schema if self._explicit_schema else None
        )
        clone.update(self._facts)
        clone._version = self._version
        return clone

    # Pickling (repro.parallel's process executor ships the database to
    # workers): reconstruct from facts + schema, then restore identity.
    def __reduce__(self):
        return (
            _restore_memory_backend,
            (
                type(self),
                tuple(self._facts),
                self._schema if self._explicit_schema else None,
                self._version,
            ),
        )


def _restore_memory_backend(cls, facts, schema, version):
    backend = cls(facts, schema=schema)
    backend._version = version
    return backend
