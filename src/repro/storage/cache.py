"""Version-keyed result caching for :class:`repro.engine.Session`.

A :class:`ResultCache` memoizes finished answers keyed by

    ``(operation, query fingerprint, extra, backend_id, data_version)``

— the query's structural fingerprint (the same machinery
:mod:`repro.planner` memoizes analyses under), the identity of the
database instance, and its mutation epoch.  Any ``add``/``update``/
``remove`` bumps the backend's :attr:`~repro.storage.base.StorageBackend.
data_version`, so a mutated database can never serve stale answers: the
old entries simply stop being addressable and age out of the LRU.

Entries are immutable values (answer frozensets, booleans), so one cached
entry may back many :class:`~repro.engine.Result` objects.  Storage is a
:class:`~repro.planner.cache.PlanCache` (thread-safe bounded LRU), and
hit/miss counters are mirrored into a
:class:`~repro.telemetry.metrics.MetricsRegistry` (``session.result_cache.
hits``/``.misses``/``.puts``), so cache behaviour shows up in
``session.stats()``, the Prometheus exposition, and the query log.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from ..telemetry.metrics import MetricsRegistry

#: Metric names mirrored into the registry.
HITS = "session.result_cache.hits"
MISSES = "session.result_cache.misses"
PUTS = "session.result_cache.puts"

#: Default LRU bound.
DEFAULT_SIZE = 128


class ResultCache:
    """A bounded LRU of finished query results keyed by data version."""

    def __init__(
        self,
        maxsize: int = DEFAULT_SIZE,
        metrics: Optional[MetricsRegistry] = None,
    ):
        # Deferred: repro.planner transitively imports repro.core, which
        # is mid-initialisation when repro.storage first loads.
        from ..planner.cache import PlanCache

        self._entries = PlanCache(maxsize)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @staticmethod
    def key(
        op: str,
        fingerprint: str,
        backend_id: str,
        data_version: int,
        extra: Hashable = None,
    ) -> Hashable:
        """The cache key for one evaluation call."""
        return (op, fingerprint, extra, backend_id, data_version)

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, counting a hit or miss."""
        value = self._entries.get(key)
        if value is None:
            self.metrics.counter(MISSES).inc()
        else:
            self.metrics.counter(HITS).inc()
        return value

    def put(self, key: Hashable, value: Any) -> Any:
        self.metrics.counter(PUTS).inc()
        return self._entries.put(key, value)

    @property
    def hits(self) -> int:
        return int(self.metrics.counter(HITS).value)

    @property
    def misses(self) -> int:
        return int(self.metrics.counter(MISSES).value)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "size": len(self._entries),
            "maxsize": self._entries.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "puts": int(self.metrics.counter(PUTS).value),
            "evictions": self._entries.evictions,
            "hit_rate": self.hit_rate(),
        }

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/put counters (entries are kept)."""
        for name in (HITS, MISSES, PUTS):
            self.metrics.counter(name).reset()
        self._entries.hits = self._entries.misses = 0
        self._entries.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return "ResultCache(%d/%d, %d hits, %d misses)" % (
            len(self._entries), self._entries.maxsize, self.hits, self.misses,
        )
