"""SQLite-backed storage: one table per relation, SQL-served matching.

A :class:`SQLiteBackend` stores each relation in its own table
(``r0``, ``r1``, … — the mapping lives in a catalog table, so arbitrary
relation names never reach SQL identifiers) with one ``TEXT`` column per
argument position, a covering UNIQUE index enforcing set semantics, and
one index per position serving :meth:`~SQLiteBackend.match` lookups.
Constants are encoded with a type tag (int/str/bool/float/None get
compact readable forms, anything else a pickle payload), so facts
round-trip exactly.

Three capabilities the in-memory backend does not have:

* **Persistence** — construct with ``path=`` to operate directly on an
  on-disk file, :meth:`SQLiteBackend.open` to resume one, and
  :meth:`~SQLiteBackend.save` to snapshot the current state elsewhere
  (via SQLite's online backup).  The catalog and the data version live
  in the file, so an re-opened database resumes its cache lineage
  (same ``backend_id``, same ``data_version``).
* **Whole-tree SQL pushdown** — :meth:`~SQLiteBackend.sql_yannakakis`
  runs the *entire* Yannakakis join plan as a single SQL statement: one
  CTE layer per phase (per-atom ``DISTINCT`` scans, bottom-up and
  top-down ``EXISTS`` semi-join sweeps, then the bottom-up
  join/projection phase), with only the final answer rows decoded back
  into Python.  ``repro.cqalgs.yannakakis`` selects it automatically
  when the database is SQLite-backed (``REPRO_KERNELS=auto``).  The
  older :meth:`~SQLiteBackend.sql_semijoin_reduce` (temp-table sweeps,
  Python join phase) is kept as a standalone building block.
* **Concurrency** — the connection is shared across threads behind an
  ``RLock`` (``repro.parallel``'s thread pools may issue matches
  concurrently); pickling ships the facts, so process pools work too.
"""

from __future__ import annotations

import base64
import os
import pickle
import sqlite3
import threading
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.atoms import Atom, Schema
from ..core.mappings import Mapping
from ..core.terms import Constant, Variable
from ..exceptions import NotGroundError, ReproError
from .base import StorageBackend, allocate_backend_id

#: Catalog table mapping relation names to their backing tables.
_CATALOG = "_repro_catalog"
#: Key/value metadata (schema version, data version).
_META = "_repro_meta"
#: On-disk layout version (bump on incompatible changes).
_LAYOUT = 1


# ---------------------------------------------------------------------------
# Constant encoding: readable tags for the common payloads, pickle otherwise
# ---------------------------------------------------------------------------
def encode_value(value: Any) -> str:
    """Encode one constant payload as tagged TEXT (injective per value)."""
    if value is True:
        return "b1"
    if value is False:
        return "b0"
    if value is None:
        return "n"
    if isinstance(value, int):
        return "i%d" % value
    if isinstance(value, str):
        return "s" + value
    if isinstance(value, float):
        return "f%r" % value
    return "p" + base64.b64encode(
        pickle.dumps(value, protocol=4)
    ).decode("ascii")


def decode_value(text: str) -> Any:
    """Invert :func:`encode_value`."""
    tag, body = text[0], text[1:]
    if tag == "i":
        return int(body)
    if tag == "s":
        return body
    if tag == "b":
        return body == "1"
    if tag == "n":
        return None
    if tag == "f":
        return float(body)
    if tag == "p":
        return pickle.loads(base64.b64decode(body))
    raise ReproError("corrupt stored value %r" % (text,))


class SQLiteBackend(StorageBackend):
    """A fact store backed by a stdlib-``sqlite3`` database.

    Parameters
    ----------
    facts:
        Initial ground atoms.
    schema:
        Optional explicit schema (eager arity checking, as with the
        memory backend).
    path:
        SQLite file to operate on (created when missing; existing
        repro-layout files are resumed).  ``None`` (default) keeps the
        database in ``:memory:``.

    >>> from repro.core.atoms import atom
    >>> db = SQLiteBackend([atom("E", 1, 2), atom("E", 2, 3)])
    >>> sorted(db.match(atom("E", "?x", 3)))
    [E(2, 3)]
    >>> db.match_count(atom("E", "?x", "?y"))
    2
    """

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        schema: Optional[Schema] = None,
        path: Optional[str] = None,
    ):
        self._path = os.path.abspath(path) if path is not None else None
        self._conn = sqlite3.connect(
            self._path if self._path is not None else ":memory:",
            check_same_thread=False,
        )
        self._lock = threading.RLock()
        self._schema = schema if schema is not None else Schema()
        self._explicit_schema = schema is not None
        #: relation name -> (table name, arity)
        self._tables: Dict[str, Tuple[str, int]] = {}
        self._version = 0
        self._tmp_counter = 0
        if self._path is not None:
            self._backend_id = "sqlite:%s" % self._path
        else:
            self._backend_id = allocate_backend_id("sqlite")
        with self._lock, self._conn:
            self._init_layout()
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _init_layout(self) -> None:
        cur = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name=?",
            (_CATALOG,),
        )
        fresh = cur.fetchone() is None
        if fresh:
            self._conn.execute(
                "CREATE TABLE %s (relation TEXT PRIMARY KEY, tbl TEXT, arity INTEGER)"
                % _CATALOG
            )
            self._conn.execute(
                "CREATE TABLE %s (key TEXT PRIMARY KEY, value TEXT)" % _META
            )
            self._conn.execute(
                "INSERT INTO %s VALUES ('layout', ?)" % _META, (str(_LAYOUT),)
            )
            self._conn.execute(
                "INSERT INTO %s VALUES ('data_version', '0')" % _META
            )
            return
        layout = self._meta("layout")
        if layout != str(_LAYOUT):
            raise ReproError(
                "unsupported sqlite layout %r (expected %r)" % (layout, _LAYOUT)
            )
        for relation, tbl, arity in self._conn.execute(
            "SELECT relation, tbl, arity FROM %s" % _CATALOG
        ):
            self._tables[relation] = (tbl, int(arity))
            if not self._explicit_schema:
                self._schema.add_relation(relation, int(arity))
        self._version = int(self._meta("data_version") or 0)

    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM %s WHERE key=?" % _META, (key,)
        ).fetchone()
        return row[0] if row is not None else None

    def _bump_version(self) -> None:
        self._version += 1
        self._conn.execute(
            "UPDATE %s SET value=? WHERE key='data_version'" % _META,
            (str(self._version),),
        )

    def _table_for(self, relation: str, arity: int) -> str:
        """The backing table of ``relation``, created on first insert."""
        entry = self._tables.get(relation)
        if entry is not None:
            return entry[0]
        tbl = "r%d" % len(self._tables)
        cols = ", ".join("c%d TEXT" % i for i in range(arity))
        self._conn.execute("CREATE TABLE %s (%s)" % (tbl, cols))
        all_cols = ", ".join("c%d" % i for i in range(arity))
        self._conn.execute(
            "CREATE UNIQUE INDEX %s_u ON %s (%s)" % (tbl, tbl, all_cols)
        )
        for i in range(arity):
            self._conn.execute(
                "CREATE INDEX %s_i%d ON %s (c%d)" % (tbl, i, tbl, i)
            )
        self._conn.execute(
            "INSERT INTO %s VALUES (?, ?, ?)" % _CATALOG, (relation, tbl, arity)
        )
        self._tables[relation] = (tbl, arity)
        return tbl

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def backend_id(self) -> str:
        return self._backend_id

    @property
    def data_version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        if not fact.is_ground():
            raise NotGroundError("database facts must be ground, got %r" % (fact,))
        if self._explicit_schema:
            self._schema.validate_atom(fact)
        else:
            self._schema.add_relation(fact.relation, fact.arity)
        row = tuple(encode_value(a.value) for a in fact.args)  # type: ignore[union-attr]
        with self._lock, self._conn:
            tbl = self._table_for(fact.relation, fact.arity)
            cur = self._conn.execute(
                "INSERT OR IGNORE INTO %s VALUES (%s)"
                % (tbl, ", ".join("?" * fact.arity)),
                row,
            )
            if cur.rowcount == 0:
                return False
            self._bump_version()
            return True

    def discard(self, fact: Atom) -> bool:
        entry = self._tables.get(fact.relation)
        if entry is None or entry[1] != fact.arity:
            return False
        tbl = entry[0]
        where = " AND ".join("c%d=?" % i for i in range(fact.arity))
        row = tuple(encode_value(a.value) for a in fact.args)  # type: ignore[union-attr]
        with self._lock, self._conn:
            cur = self._conn.execute(
                "DELETE FROM %s WHERE %s" % (tbl, where), row
            )
            if cur.rowcount == 0:
                return False
            self._bump_version()
            return True

    def update(self, facts: Iterable[Atom]) -> int:
        with self._lock:
            return super().update(facts)

    def add_many(self, facts: Iterable[Atom]) -> int:
        """Bulk insert via one ``executemany`` per relation, with a
        single version bump for the whole batch (see the base class).
        ``INSERT OR IGNORE`` against the unique row index dedups both
        against the stored facts and within the batch; the insert count
        comes from ``total_changes``."""
        grouped: Dict[Tuple[str, int], List[Tuple[str, ...]]] = {}
        for fact in facts:
            if not fact.is_ground():
                raise NotGroundError(
                    "database facts must be ground, got %r" % (fact,)
                )
            if self._explicit_schema:
                self._schema.validate_atom(fact)
            else:
                self._schema.add_relation(fact.relation, fact.arity)
            row = tuple(encode_value(a.value) for a in fact.args)  # type: ignore[union-attr]
            grouped.setdefault((fact.relation, fact.arity), []).append(row)
        added = 0
        with self._lock, self._conn:
            for (relation, arity), rows in grouped.items():
                tbl = self._table_for(relation, arity)
                before = self._conn.total_changes
                self._conn.executemany(
                    "INSERT OR IGNORE INTO %s VALUES (%s)"
                    % (tbl, ", ".join("?" * arity)),
                    rows,
                )
                added += self._conn.total_changes - before
            if added:
                self._bump_version()
        return added

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    def _decode_row(self, relation: str, row: Sequence[str]) -> Atom:
        return Atom(relation, tuple(Constant(decode_value(v)) for v in row))

    def facts(self, relation: Optional[str] = None) -> Tuple[Atom, ...]:
        if relation is None:
            out: List[Atom] = []
            for rel in self._tables:
                out.extend(self.facts(rel))
            return tuple(out)
        entry = self._tables.get(relation)
        if entry is None:
            return ()
        with self._lock:
            rows = self._conn.execute("SELECT * FROM %s" % entry[0]).fetchall()
        return tuple(self._decode_row(relation, row) for row in rows)

    def relations(self) -> FrozenSet[str]:
        with self._lock:
            return frozenset(
                rel
                for rel, (tbl, _) in self._tables.items()
                if self._conn.execute(
                    "SELECT 1 FROM %s LIMIT 1" % tbl
                ).fetchone()
                is not None
            )

    def active_domain(self) -> FrozenSet[Constant]:
        out: set = set()
        with self._lock:
            for tbl, arity in self._tables.values():
                for i in range(arity):
                    for (value,) in self._conn.execute(
                        "SELECT DISTINCT c%d FROM %s" % (i, tbl)
                    ):
                        out.add(Constant(decode_value(value)))
        return frozenset(out)

    def __contains__(self, fact: Atom) -> bool:
        if not fact.is_ground():
            return False
        entry = self._tables.get(fact.relation)
        if entry is None or entry[1] != fact.arity:
            return False
        where = " AND ".join("c%d=?" % i for i in range(fact.arity))
        row = tuple(encode_value(a.value) for a in fact.args)  # type: ignore[union-attr]
        with self._lock:
            return (
                self._conn.execute(
                    "SELECT 1 FROM %s WHERE %s LIMIT 1" % (entry[0], where), row
                ).fetchone()
                is not None
            )

    def __len__(self) -> int:
        with self._lock:
            return sum(
                self._conn.execute(
                    "SELECT COUNT(*) FROM %s" % tbl
                ).fetchone()[0]
                for tbl, _ in self._tables.values()
            )

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.facts())

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _pattern_sql(self, pattern: Atom) -> Optional[Tuple[str, str, Tuple[str, ...]]]:
        """``(table, WHERE clause, parameters)`` for ``pattern``, or
        ``None`` when the relation/arity cannot match anything."""
        entry = self._tables.get(pattern.relation)
        if entry is None or entry[1] != pattern.arity:
            return None
        conditions: List[str] = []
        params: List[str] = []
        first_pos: Dict[Variable, int] = {}
        for pos, arg in enumerate(pattern.args):
            if isinstance(arg, Constant):
                conditions.append("c%d=?" % pos)
                params.append(encode_value(arg.value))
            else:
                seen = first_pos.setdefault(arg, pos)
                if seen != pos:
                    conditions.append("c%d=c%d" % (pos, seen))
        where = " AND ".join(conditions) if conditions else "1=1"
        return entry[0], where, tuple(params)

    def match(self, pattern: Atom) -> Iterator[Atom]:
        plan = self._pattern_sql(pattern)
        if plan is None:
            return
        tbl, where, params = plan
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM %s WHERE %s" % (tbl, where), params
            ).fetchall()
        for row in rows:
            yield self._decode_row(pattern.relation, row)

    def match_count(self, pattern: Atom) -> int:
        plan = self._pattern_sql(pattern)
        if plan is None:
            return 0
        tbl, where, params = plan
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM %s WHERE %s" % (tbl, where), params
            ).fetchone()[0]

    # ------------------------------------------------------------------
    # Whole-tree Yannakakis pushdown
    # ------------------------------------------------------------------
    #: Capability flag :func:`repro.relalg.config.choose_kernel` checks.
    supports_sql_yannakakis = True

    def sql_yannakakis(
        self,
        atoms: Sequence[Atom],
        links: Sequence[Tuple[int, int]],
        frees: Iterable[Variable],
        exists_only: bool = False,
    ):
        """The whole Yannakakis join plan as **one** SQL statement.

        ``atoms`` are the join-tree nodes, ``links`` its child→parent
        edges, ``frees`` the output variables.  The statement is a
        ``WITH`` chain of four CTE layers mirroring the algorithm:

        * ``s<i>`` — the scan of atom ``i``: its distinct variable
          bindings, columns ``v0, v1, …`` aligned with the variables
          sorted by repr (ground atoms become the one-column Boolean
          relation ``SELECT DISTINCT 1``; atoms over an absent relation
          become a correctly-shaped empty relation);
        * ``u<i>`` — the bottom-up sweep: ``s<i>`` filtered by an
          ``EXISTS`` per child (leaves are skipped — their ``u`` *is*
          their ``s``);
        * ``d<i>`` — the top-down sweep: ``u<i>`` filtered by an
          ``EXISTS`` against the parent's ``d`` (the root's ``d`` is its
          ``u``);
        * ``a<i>`` — the join phase: ``d<i>`` joined with the children's
          ``a`` relations and projected (``DISTINCT``) onto the free
          variables plus the interface to the parent.  The running-
          intersection property of the join tree guarantees every
          variable shared between sibling subtrees occurs in atom ``i``,
          so all cross-child equalities route through ``t0`` and each
          kept column has a unique source.

        Returns the decoded answer mappings, or — with ``exists_only``,
        the Boolean fast path — whether the root survives the bottom-up
        sweep (the ``d``/``a`` layers are then not even generated).
        """
        n = len(atoms)
        children: Dict[int, List[int]] = {i: [] for i in range(n)}
        parent_of: Dict[int, int] = {}
        for child, parent in links:
            children[parent].append(child)
            parent_of[child] = parent
        roots = [i for i in range(n) if i not in parent_of]
        if len(roots) != 1:
            raise ReproError(
                "sql_yannakakis needs a single-root join tree, got %d roots"
                % len(roots)
            )
        root = roots[0]
        order: List[int] = []
        stack = [root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(children[node])

        atom_vars: List[List[Variable]] = [
            sorted(a.variables(), key=repr) for a in atoms
        ]
        var_sets = [set(vs) for vs in atom_vars]

        ctes: List[Tuple[str, str]] = []
        params: List[str] = []
        #: current CTE name per node, advanced layer by layer
        rel = ["s%d" % i for i in range(n)]

        # --- scans -----------------------------------------------------
        for i, a in enumerate(atoms):
            vs = atom_vars[i]
            plan = self._pattern_sql(a)
            if plan is None:
                cols = ", ".join(
                    "NULL AS v%d" % j for j in range(len(vs))
                ) or "1 AS one"
                body = "SELECT %s WHERE 0" % cols
            else:
                tbl, where, scan_params = plan
                params.extend(scan_params)
                if vs:
                    pos_of = {
                        v: next(p for p, arg in enumerate(a.args) if arg == v)
                        for v in vs
                    }
                    select = ", ".join(
                        "c%d AS v%d" % (pos_of[v], j) for j, v in enumerate(vs)
                    )
                else:
                    select = "1 AS one"
                body = "SELECT DISTINCT %s FROM %s WHERE %s" % (
                    select, tbl, where,
                )
            ctes.append((rel[i], body))

        # --- bottom-up sweep -------------------------------------------
        for node in reversed(order):
            if not children[node]:
                continue
            conditions: List[str] = []
            for child in children[node]:
                shared = [v for v in atom_vars[node] if v in var_sets[child]]
                sub = "SELECT 1 FROM %s" % rel[child]
                if shared:
                    sub += " WHERE " + " AND ".join(
                        "%s.v%d = t.v%d"
                        % (
                            rel[child],
                            atom_vars[child].index(v),
                            atom_vars[node].index(v),
                        )
                        for v in shared
                    )
                conditions.append("EXISTS (%s)" % sub)
            ctes.append(
                (
                    "u%d" % node,
                    "SELECT * FROM %s t WHERE %s"
                    % (rel[node], " AND ".join(conditions)),
                )
            )
            rel[node] = "u%d" % node

        if exists_only:
            sql = "WITH %s SELECT EXISTS (SELECT 1 FROM %s)" % (
                ", ".join("%s AS (%s)" % (name, body) for name, body in ctes),
                rel[root],
            )
            with self._lock:
                return bool(self._conn.execute(sql, params).fetchone()[0])

        # --- top-down sweep --------------------------------------------
        for node in order:
            if node == root:
                continue
            parent = parent_of[node]
            shared = [v for v in atom_vars[node] if v in var_sets[parent]]
            sub = "SELECT 1 FROM %s" % rel[parent]
            if shared:
                sub += " WHERE " + " AND ".join(
                    "%s.v%d = t.v%d"
                    % (
                        rel[parent],
                        atom_vars[parent].index(v),
                        atom_vars[node].index(v),
                    )
                    for v in shared
                )
            ctes.append(
                (
                    "d%d" % node,
                    "SELECT * FROM %s t WHERE EXISTS (%s)" % (rel[node], sub),
                )
            )
            rel[node] = "d%d" % node

        # --- join phase ------------------------------------------------
        subtree: List[set] = [set(vs) for vs in var_sets]
        for node in reversed(order):
            for child in children[node]:
                subtree[node] |= subtree[child]
        free_set = set(frees)
        a_schema: List[List[Variable]] = [[] for _ in range(n)]
        for node in reversed(order):
            if node == root:
                keep = free_set & subtree[node]
            else:
                keep = (free_set & subtree[node]) | (
                    subtree[node] & var_sets[parent_of[node]]
                )
            a_schema[node] = sorted(keep, key=repr)
            source: List[str] = ["%s t0" % rel[node]]
            for k, child in enumerate(children[node]):
                alias = "t%d" % (k + 1)
                join_on = [v for v in a_schema[child] if v in var_sets[node]]
                condition = " AND ".join(
                    "%s.v%d = t0.v%d"
                    % (alias, a_schema[child].index(v), atom_vars[node].index(v))
                    for v in join_on
                ) or "1=1"
                source.append(
                    "JOIN a%d %s ON %s" % (child, alias, condition)
                )
            columns: List[str] = []
            for j, v in enumerate(a_schema[node]):
                if v in var_sets[node]:
                    columns.append("t0.v%d AS v%d" % (atom_vars[node].index(v), j))
                else:
                    # Unique by the running-intersection property.
                    k, child = next(
                        (k, c)
                        for k, c in enumerate(children[node])
                        if v in subtree[c]
                    )
                    columns.append(
                        "t%d.v%d AS v%d"
                        % (k + 1, a_schema[child].index(v), j)
                    )
            ctes.append(
                (
                    "a%d" % node,
                    "SELECT DISTINCT %s FROM %s"
                    % (", ".join(columns) or "1 AS one", " ".join(source)),
                )
            )
            rel[node] = "a%d" % node

        sql = "WITH %s SELECT * FROM %s" % (
            ", ".join("%s AS (%s)" % (name, body) for name, body in ctes),
            rel[root],
        )
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        out_schema = a_schema[root]
        if not out_schema:
            return frozenset([Mapping()]) if rows else frozenset()
        return frozenset(
            Mapping.from_trusted(
                {
                    v: Constant(decode_value(row[j]))
                    for j, v in enumerate(out_schema)
                }
            )
            for row in rows
        )

    # ------------------------------------------------------------------
    # Yannakakis semi-join pushdown
    # ------------------------------------------------------------------
    #: Capability flag ``repro.cqalgs.yannakakis`` checks for.
    supports_sql_semijoin = True

    def sql_semijoin_reduce(
        self,
        atoms: Sequence[Atom],
        links: Sequence[Tuple[int, int]],
    ) -> List[List[Mapping]]:
        """Both semi-join sweeps of Yannakakis' algorithm, in SQL.

        ``atoms`` are the join-tree nodes and ``links`` its child→parent
        edges.  Each atom is scanned into a temp table of its distinct
        variable bindings; the bottom-up and top-down sweeps then run as
        correlated ``DELETE … WHERE NOT EXISTS`` statements along the
        tree, and the reduced relations are decoded back into
        :class:`~repro.core.mappings.Mapping` lists for the join phase.
        The result equals the Python sweeps' output up to duplicate
        bindings (temp tables are ``DISTINCT``), which the join phase
        collapses anyway.
        """
        n = len(atoms)
        children: Dict[int, List[int]] = {i: [] for i in range(n)}
        is_child = [False] * n
        for child, parent in links:
            children[parent].append(child)
            is_child[child] = True
        roots = [i for i in range(n) if not is_child[i]]
        order: List[int] = []
        stack = list(roots)
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(children[node])

        atom_vars: List[List[Variable]] = [
            sorted(a.variables(), key=repr) for a in atoms
        ]
        with self._lock, self._conn:
            self._tmp_counter += 1
            prefix = "yt%d" % self._tmp_counter
            names = ["%s_%d" % (prefix, i) for i in range(n)]
            try:
                for i, a in enumerate(atoms):
                    self._scan_to_temp(names[i], a, atom_vars[i])
                # Phase 1: bottom-up (children filter parents).
                for node in reversed(order):
                    for child in children[node]:
                        self._sql_semijoin(
                            names[node], atom_vars[node],
                            names[child], atom_vars[child],
                        )
                # Phase 2: top-down (parents filter children).
                for node in order:
                    for child in children[node]:
                        self._sql_semijoin(
                            names[child], atom_vars[child],
                            names[node], atom_vars[node],
                        )
                relations: List[List[Mapping]] = []
                for i in range(n):
                    rows = self._conn.execute(
                        "SELECT * FROM %s" % names[i]
                    ).fetchall()
                    vs = atom_vars[i]
                    relations.append(
                        [
                            Mapping(
                                {
                                    v: Constant(decode_value(row[j]))
                                    for j, v in enumerate(vs)
                                }
                            )
                            for row in rows
                        ]
                    )
                return relations
            finally:
                for name in names:
                    self._conn.execute("DROP TABLE IF EXISTS %s" % name)

    def _scan_to_temp(self, name: str, pattern: Atom, vs: List[Variable]) -> None:
        """``CREATE TEMP TABLE name`` holding the distinct variable
        bindings of the facts matching ``pattern`` (a constant ``one``
        column when the pattern is ground)."""
        cols = ", ".join("v%d TEXT" % i for i in range(len(vs))) or "one INTEGER"
        self._conn.execute("CREATE TEMP TABLE %s (%s)" % (name, cols))
        plan = self._pattern_sql(pattern)
        if plan is None:
            return
        tbl, where, params = plan
        if vs:
            pos_of = {
                v: next(
                    p for p, arg in enumerate(pattern.args) if arg == v
                )
                for v in vs
            }
            select = ", ".join("c%d" % pos_of[v] for v in vs)
            self._conn.execute(
                "INSERT INTO %s SELECT DISTINCT %s FROM %s WHERE %s"
                % (name, select, tbl, where),
                params,
            )
        else:
            self._conn.execute(
                "INSERT INTO %s SELECT DISTINCT 1 FROM %s WHERE %s"
                % (name, tbl, where),
                params,
            )

    def _sql_semijoin(
        self,
        left: str,
        left_vars: List[Variable],
        right: str,
        right_vars: List[Variable],
    ) -> None:
        """``left ⋉ right`` in place: delete the ``left`` rows with no
        join partner (on the shared variables) in ``right``."""
        shared = [v for v in left_vars if v in set(right_vars)]
        conditions = " AND ".join(
            "%s.v%d = %s.v%d"
            % (right, right_vars.index(v), left, left_vars.index(v))
            for v in shared
        )
        sub = "SELECT 1 FROM %s" % right
        if conditions:
            sub += " WHERE %s" % conditions
        self._conn.execute(
            "DELETE FROM %s WHERE NOT EXISTS (%s)" % (left, sub)
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Snapshot the current state into the SQLite file at ``path``
        (overwriting it) via the online backup API."""
        target = os.path.abspath(path)
        if os.path.exists(target):
            os.remove(target)
        with self._lock:
            dest = sqlite3.connect(target)
            try:
                with dest:
                    self._conn.backup(dest)
            finally:
                dest.close()

    @classmethod
    def open(cls, path: str, schema: Optional[Schema] = None) -> "SQLiteBackend":
        """Resume the on-disk database at ``path`` (same ``backend_id``
        and ``data_version`` it was saved with, so result-cache lineage
        survives the round trip)."""
        if not os.path.exists(path):
            raise ReproError("no sqlite database at %s" % path)
        return cls(schema=schema, path=path)

    def close(self) -> None:
        """Close the underlying connection (further use is an error)."""
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    # Copy / pickling
    # ------------------------------------------------------------------
    def copy(self) -> "SQLiteBackend":
        """An independent in-memory copy (schema, facts, and version
        carry over; the copy gets its own ``backend_id``)."""
        clone = SQLiteBackend(
            schema=self._schema if self._explicit_schema else None
        )
        clone.update(self.facts())
        with clone._lock, clone._conn:
            clone._version = self._version
            clone._conn.execute(
                "UPDATE %s SET value=? WHERE key='data_version'" % _META,
                (str(self._version),),
            )
        return clone

    def __reduce__(self):
        return (
            _restore_sqlite_backend,
            (
                self._path,
                tuple(self.facts()) if self._path is None else None,
                self._schema if self._explicit_schema else None,
                self._version,
            ),
        )


def _restore_sqlite_backend(path, facts, schema, version):
    if path is not None:
        return SQLiteBackend(schema=schema, path=path)
    backend = SQLiteBackend(facts, schema=schema)
    with backend._lock, backend._conn:
        backend._version = version
        backend._conn.execute(
            "UPDATE %s SET value=? WHERE key='data_version'" % _META,
            (str(version),),
        )
    return backend
