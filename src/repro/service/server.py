"""The multi-tenant async query service: a stdlib-``asyncio`` HTTP daemon.

:class:`ServiceServer` is the long-lived, network-facing front end of the
reproduction — the "millions of users" deployment shape.  One process
owns

* one **storage backend** (memory or SQLite) and one shared
  :class:`~repro.planner.planner.Planner`, so parsed queries, structural
  profiles, and EXPLAINs warm across *all* tenants;
* a pool of **warm per-tenant** :class:`~repro.engine.Session`\\ s, each
  carrying its tenant's private version-keyed
  :class:`~repro.storage.cache.ResultCache`, its tier's
  :class:`~repro.telemetry.resources.ResourceBudget`, and a
  tenant-stamped view of the shared obslog;
* an :class:`~repro.service.admission.AdmissionController` enforcing
  per-tenant concurrency caps and a global in-flight ceiling — requests
  queue briefly, then are shed with ``429`` + ``Retry-After``;
* a **request coalescer**: compatible concurrent requests (same tenant,
  same operation) dispatch as one
  :meth:`~repro.engine.Session.run_batch` call, and identical query
  texts within a group evaluate once and share the answers.

Evaluation is synchronous Python, so the asyncio loop never runs a
query itself: admitted requests are handed to a bounded thread executor
and the loop keeps accepting, shedding, and answering health checks
while queries grind.  HTTP routes:

====================  =====================================================
``POST /query``       evaluate (``{"maximal": true}`` for ``p_m(D)``)
``POST /ask``         is a candidate mapping an answer?
``POST /explain``     static EXPLAIN profile, no evaluation
``GET /healthz``      liveness + drain state + admission snapshot
``GET /metrics``      Prometheus exposition (shared registry, per-tenant
                      labels, per-tenant cache gauges)
``GET /tenants``      the key-free tenant/QoS registry
``GET /debug/*``      the live debug endpoints (queries/plans/stats/
                      profile), exactly as on ``MetricsServer``
====================  =====================================================

Route matching, ``/healthz`` fields, and all error bodies are shared
with :class:`~repro.telemetry.promhttp.MetricsServer` through one
:class:`~repro.telemetry.routes.Router` built by
``MetricsServer.build_router`` — the service *embeds* an unstarted
metrics server and overlays its own routes, so the two daemons cannot
drift apart.

Shutdown is graceful: ``SIGTERM`` (or :meth:`ServiceServer.stop`) stops
accepting, answers new work ``503 draining``, waits for every in-flight
request to finish writing its response, then exits — zero dropped
queries, visible in the obslog as ``service.draining`` /
``service.stopped`` events.

``repro serve`` is the CLI wrapper; the server can also run embedded
(``start()``/``stop()`` drive a private event-loop thread, which is how
the tests hammer it).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..engine import Result, Session
from ..exceptions import ParseError, ReproError, ResourceBudgetExceeded
from ..storage import StorageBackend
from ..telemetry.obslog import QueryLog
from ..telemetry.promhttp import MetricsServer
from ..telemetry.routes import (
    RouteRequest,
    RouteResponse,
    Router,
    error_response,
    json_response,
)
from .admission import DEFAULT_GLOBAL_LIMIT, AdmissionController, LoadShedError
from .protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    QueryRequest,
    encode_ask,
    encode_explain,
    encode_result,
)
from .tenancy import API_KEY_HEADER, TenantConfig, TenantRegistry, default_registry

__all__ = ["ServiceServer"]

#: How long a batch window stays open collecting compatible requests.
DEFAULT_BATCH_WINDOW = 0.005

#: Per-request header/body read timeout.
READ_TIMEOUT = 30.0

_HTTP_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _eval_one(session: Session, op: str, text: str) -> Tuple[bool, Any]:
    """Evaluate one query in the executor, capturing the exception so a
    failing group member never poisons its peers."""
    try:
        fn = session.query if op == "query" else session.query_maximal
        return True, fn(text)
    except Exception as exc:  # distributed per-request by the batcher
        return False, exc


def _run_group(
    session: Session, op: str, texts: List[str], jobs: int
) -> List[Tuple[bool, Any]]:
    """Evaluate a coalesced group: ``run_batch`` when there is real
    fan-out, falling back to per-item evaluation if the batch dies (so
    one tenant query blowing its budget only fails its own requests)."""
    if len(texts) > 1:
        try:
            batch = session.run_batch(
                list(texts), jobs=jobs, executor="thread", op=op
            )
            return [(True, result) for result in batch.results]
        except Exception:
            pass
    return [_eval_one(session, op, text) for text in texts]


class _Batcher:
    """Coalesce compatible concurrent requests into ``run_batch`` calls.

    Requests arriving within one batch window for the same
    ``(tenant, op)`` dispatch as a single group; identical query texts
    inside a group evaluate once and fan the shared answers back out
    (``coalesced`` in the response and the ``service.coalesced`` counter
    mark the riders).
    """

    def __init__(self, server: "ServiceServer", window: float):
        self.server = server
        self.window = window
        self._pending: Dict[Tuple[str, str], List[Tuple[str, asyncio.Future]]] = {}

    def submit(
        self, tenant: TenantConfig, session: Session, op: str, text: str
    ) -> "asyncio.Future[Tuple[bool, Any, bool]]":
        """Enqueue; the future resolves to ``(ok, value, coalesced)``."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = (tenant.name, op)
        group = self._pending.get(key)
        if group is None:
            self._pending[key] = [(text, future)]
            if self.window > 0:
                loop.call_later(self.window, self._flush, key, session)
            else:
                loop.call_soon(self._flush, key, session)
        else:
            group.append((text, future))
        return future

    def _flush(self, key: Tuple[str, str], session: Session) -> None:
        group = self._pending.pop(key, None)
        if not group:
            return
        tenant_name, op = key
        unique: List[str] = []
        riders: Dict[str, List[asyncio.Future]] = {}
        for text, future in group:
            if text not in riders:
                riders[text] = []
                unique.append(text)
            riders[text].append(future)
        metrics = self.server.metrics
        metrics.counter("service.batch.dispatches").inc()
        metrics.histogram("service.batch.size").observe(len(group))
        coalesced = len(group) - len(unique)
        if coalesced:
            metrics.counter(
                "service.coalesced", labels={"tenant": tenant_name}
            ).inc(coalesced)
        loop = asyncio.get_running_loop()
        jobs = min(len(unique), self.server.batch_jobs)
        executor_future = loop.run_in_executor(
            self.server._executor, _run_group, session, op, unique, jobs
        )

        def _distribute(done: "asyncio.Future") -> None:
            error = done.exception()
            for i, text in enumerate(unique):
                for rank, future in enumerate(riders[text]):
                    if future.cancelled():
                        continue
                    if error is not None:
                        future.set_exception(error)
                    else:
                        ok, value = done.result()[i]
                        future.set_result((ok, value, rank > 0))

        executor_future.add_done_callback(_distribute)


class ServiceServer:
    """The multi-tenant asyncio HTTP query daemon (module docstring)."""

    def __init__(
        self,
        data: Any = None,
        tenants: Optional[TenantRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: Optional[str] = None,
        path: Optional[str] = None,
        shards: Optional[int] = None,
        jobs: Optional[int] = None,
        global_limit: int = DEFAULT_GLOBAL_LIMIT,
        obslog: Optional[QueryLog] = None,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        drain_timeout: float = 30.0,
    ):
        self.tenants = tenants if tenants is not None else default_registry()
        self.host = host
        self._requested_port = port
        self.jobs = jobs
        #: Worker cap a single coalesced batch may fan out to.
        self.batch_jobs = max(1, jobs or 4)
        self.batch_window = batch_window
        self.drain_timeout = drain_timeout
        self.obslog = obslog
        # One root session owns backend conversion and the shared planner;
        # it never runs queries itself.  With ``shards`` (or
        # backend="sharded") the whole fleet serves from one set of shard
        # processes — every tenant session shares the root's database.
        self._root = Session(
            data, backend=backend, path=path, shards=shards, cache=False,
            jobs=None, obslog=obslog,
        )
        self.planner = self._root.planner
        self.metrics = self.planner.metrics
        self.database: StorageBackend = self._root.database
        #: The warm per-tenant session pool: every session shares the
        #: planner (one plan cache for the fleet) and the database, and
        #: owns its tenant's cache/budgets/obslog stamp.
        self.sessions: Dict[str, Session] = {
            tenant.name: Session(
                self.database,
                planner=self.planner,
                cache_size=tenant.tier.cache_size,
                budgets=tenant.tier.budget,
                track_resources=True,
                obslog=obslog,
                tenant=tenant.name,
                jobs=jobs,
            )
            for tenant in self.tenants
        }
        self.admission = AdmissionController(
            global_limit=global_limit, metrics=self.metrics
        )
        self._batcher = _Batcher(self, batch_window)
        self._executor = ThreadPoolExecutor(
            max_workers=global_limit, thread_name_prefix="repro-service"
        )
        # The embedded (never started) metrics server supplies the
        # shared observability routes and the /debug/profile plumbing.
        self._obs = MetricsServer(
            [self.metrics, self._service_exposition],
            debug=self._debug_providers(),
        )
        self.router = self._build_router()
        self.requests_served = 0
        self._started_at = 0.0
        self._draining = False
        self._connections: set = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    # Observability surfaces
    # ------------------------------------------------------------------
    def _debug_providers(self) -> Dict[str, Any]:
        """Aggregate every tenant session's debug payloads by tenant."""
        def queries() -> Dict[str, Any]:
            return {
                name: session.debug_queries()
                for name, session in self.sessions.items()
            }

        def plans() -> Dict[str, Any]:
            # The planner (and so the plan caches) is shared: any
            # tenant's session describes the same EXPLAIN cache.
            if not self.sessions:
                return {}
            return next(iter(self.sessions.values())).debug_plans()

        def stats() -> Dict[str, Any]:
            if not self.sessions:
                return {}
            return next(iter(self.sessions.values())).debug_stats()

        return {"queries": queries, "plans": plans, "stats": stats}

    def _service_exposition(self) -> str:
        """Scrape-time Prometheus text for per-tenant cache state and the
        service gauges that live outside the shared registry."""
        from ..telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for name, session in self.sessions.items():
            cache = session.result_cache
            if cache is None:
                continue
            stats = cache.stats()
            labels = {"tenant": name}
            registry.gauge("service.cache.hits", labels=labels).set(
                stats["hits"]
            )
            registry.gauge("service.cache.misses", labels=labels).set(
                stats["misses"]
            )
            registry.gauge("service.cache.entries", labels=labels).set(
                stats["size"]
            )
        registry.gauge("service.draining").set(1 if self._draining else 0)
        registry.gauge("service.tenants").set(len(self.sessions))
        return registry.to_prometheus()

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload — the MetricsServer fields (identical
        semantics) plus the service block."""
        payload = self._obs.health()
        payload["status"] = "draining" if self._draining else "ok"
        payload["uptime_seconds"] = (
            time.time() - self._started_at if self._started_at else 0.0
        )
        payload["requests_served"] = self.requests_served
        payload["service"] = {
            "tenants": self.tenants.names(),
            "admission": self.admission.snapshot(),
            "draining": self._draining,
            "backend": type(self.database).__name__,
            "data_version": self.database.data_version,
            "facts": len(self.database),
        }
        return payload

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _build_router(self) -> Router:
        router = self._obs.build_router()
        router.add("GET", "/healthz", self._route_healthz)
        router.add("GET", "/tenants", self._route_tenants)
        router.add("POST", "/query", self._route_query)
        router.add("POST", "/ask", self._route_ask)
        router.add("POST", "/explain", self._route_explain)
        return router

    def _route_healthz(self, request: RouteRequest) -> RouteResponse:
        return json_response(200, self.health(), request, title="/healthz")

    def _route_tenants(self, request: RouteRequest) -> RouteResponse:
        payload = {
            "tenants": self.tenants.snapshot(),
            "admission": self.admission.snapshot(),
        }
        return json_response(200, payload, request, title="/tenants")

    def _authenticate(
        self, request: RouteRequest
    ) -> Tuple[Optional[TenantConfig], Optional[RouteResponse]]:
        key = request.header(API_KEY_HEADER)
        if key is None:
            auth = request.header("Authorization", "")
            if auth.lower().startswith("bearer "):
                key = auth[7:].strip()
        tenant = self.tenants.authenticate(key)
        if tenant is None:
            message = (
                "unknown API key" if key
                else "missing API key (send %s or Authorization: Bearer)"
                % API_KEY_HEADER
            )
            return None, error_response(401, message)
        return tenant, None

    async def _route_query(self, request: RouteRequest) -> RouteResponse:
        return await self._serve_op("query", request)

    async def _route_ask(self, request: RouteRequest) -> RouteResponse:
        return await self._serve_op("ask", request)

    async def _route_explain(self, request: RouteRequest) -> RouteResponse:
        return await self._serve_op("explain", request)

    async def _serve_op(self, op: str, request: RouteRequest) -> RouteResponse:
        tenant, failure = self._authenticate(request)
        if failure is not None:
            return failure
        start = time.perf_counter()
        if self._draining:
            return self._finish_op(
                tenant, op, start,
                error_response(
                    503, "server is draining",
                    headers={"Retry-After": "1"},
                ),
            )
        try:
            parsed = QueryRequest.from_body(op, request.body)
        except ProtocolError as exc:
            return self._finish_op(
                tenant, op, start, error_response(exc.status, str(exc))
            )
        self.metrics.counter(
            "service.requests", labels={"tenant": tenant.name, "op": parsed.op}
        ).inc()
        try:
            slot = await self.admission.admit(tenant)
        except LoadShedError as exc:
            if self.obslog is not None:
                self.obslog.emit(
                    "service.shed", tenant=tenant.name, op=parsed.op,
                    scope=exc.scope, waited_ms=round(exc.waited * 1000.0, 3),
                )
            return self._finish_op(
                tenant, op, start,
                error_response(
                    429, str(exc),
                    headers={"Retry-After": "%g" % exc.retry_after},
                    scope=exc.scope, retry_after=exc.retry_after,
                ),
            )
        async with slot:
            response = await self._execute(tenant, parsed, start)
        return self._finish_op(tenant, op, start, response)

    async def _execute(
        self, tenant: TenantConfig, parsed: QueryRequest, start: float
    ) -> RouteResponse:
        session = self.sessions[tenant.name]
        loop = asyncio.get_running_loop()
        try:
            if parsed.op in ("query", "query_maximal"):
                ok, value, coalesced = await self._batcher.submit(
                    tenant, session, parsed.op, parsed.query
                )
                if not ok:
                    raise value
                result: Result = value
                body = encode_result(
                    parsed.op, tenant.name, result,
                    time.perf_counter() - start, coalesced=coalesced,
                )
            elif parsed.op == "ask":
                decision = await loop.run_in_executor(
                    self._executor, session.ask, parsed.query, parsed.candidate
                )
                body = encode_ask(
                    tenant.name, decision, time.perf_counter() - start
                )
            else:  # explain
                profile = await loop.run_in_executor(
                    self._executor, session.explain, parsed.query
                )
                body = encode_explain(tenant.name, profile)
        except ResourceBudgetExceeded as exc:
            return error_response(
                429,
                "resource budget exceeded: %s" % exc,
                headers={"Retry-After": "%g" % tenant.tier.retry_after},
                budget="hard", trace_id=getattr(exc, "trace_id", None),
            )
        except ParseError as exc:
            return error_response(400, "parse error: %s" % exc)
        except ReproError as exc:
            return error_response(400, "%s: %s" % (type(exc).__name__, exc))
        return json_response(200, body)

    def _finish_op(
        self, tenant: Optional[TenantConfig], op: str, start: float,
        response: RouteResponse,
    ) -> RouteResponse:
        wall = time.perf_counter() - start
        name = tenant.name if tenant is not None else "?"
        self.metrics.counter(
            "service.responses",
            labels={"tenant": name, "status": str(response.status)},
        ).inc()
        self.metrics.histogram(
            "service.request_seconds", labels={"tenant": name}
        ).observe(wall)
        if self.obslog is not None:
            self.obslog.emit(
                "service.request", tenant=name, op=op,
                status=response.status, wall_ms=round(wall * 1000.0, 3),
            )
        return response

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            request = await self._read_request(reader)
            if isinstance(request, RouteResponse):  # parse-level failure
                response = request
            else:
                self.requests_served += 1
                outcome = self.router.dispatch(request)
                if hasattr(outcome, "__await__"):
                    try:
                        outcome = Router.finish(await outcome, request)
                    except Exception as exc:  # noqa: BLE001
                        outcome = Router.internal_error(exc)
                response = outcome
            await self._write_response(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Any:
        """Parse one HTTP/1.1 request into a
        :class:`~repro.telemetry.routes.RouteRequest` — or return the
        error :class:`RouteResponse` to answer with."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), READ_TIMEOUT
            )
        except asyncio.TimeoutError:
            return error_response(400, "timed out reading the request")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return error_response(400, "malformed HTTP request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), READ_TIMEOUT)
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            return error_response(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            # Drain (bounded) so the client can finish writing and read
            # the error instead of seeing a reset mid-upload.
            remaining = min(length, 4 * MAX_BODY_BYTES)
            while remaining > 0:
                try:
                    chunk = await asyncio.wait_for(
                        reader.read(min(remaining, 65536)), READ_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    break
                if not chunk:
                    break
                remaining -= len(chunk)
            return error_response(
                413,
                "request body of %d bytes exceeds the %d byte limit"
                % (length, MAX_BODY_BYTES),
            )
        body = b""
        if length > 0:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), READ_TIMEOUT
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                return error_response(400, "request body shorter than Content-Length")
        path, _, query = target.partition("?")
        return RouteRequest(method, path, query, headers=headers, body=body)

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: RouteResponse
    ) -> None:
        reason = _HTTP_STATUS_TEXT.get(response.status, "Unknown")
        head = [
            "HTTP/1.1 %d %s" % (response.status, reason),
            "Content-Type: %s" % response.content_type,
            "Content-Length: %d" % len(response.body),
            "Connection: close",
        ]
        for name, value in response.headers.items():
            head.append("%s: %s" % (name, value))
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    @property
    def draining(self) -> bool:
        return self._draining

    async def start_async(self) -> "ServiceServer":
        """Bind and start accepting on the current event loop."""
        if self._server is not None:
            return self
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._started_at = time.time()
        self._loop = asyncio.get_running_loop()
        if self.obslog is not None:
            self.obslog.emit(
                "service.started", host=self.host, port=self.port,
                tenants=self.tenants.names(),
            )
        return self

    async def shutdown_async(self, drain: bool = True) -> None:
        """Graceful drain: refuse new work, finish in-flight, release."""
        if self._server is None:
            return
        self._draining = True
        if self.obslog is not None:
            self.obslog.emit(
                "service.draining",
                in_flight=self.admission.in_flight_global,
                connections=len(self._connections),
            )
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        if drain and self._connections:
            pending = {
                task for task in self._connections
                if task is not asyncio.current_task()
            }
            if pending:
                await asyncio.wait(pending, timeout=self.drain_timeout)
        dropped = len(self._connections)
        if self.obslog is not None:
            self.obslog.emit("service.stopped", dropped_connections=dropped)
        for session in self.sessions.values():
            session.close()
        self._root.close()  # stops the shard processes of a sharded backend
        self._executor.shutdown(wait=False)

    async def serve_forever(self) -> None:
        """Foreground mode (the CLI): serve until SIGTERM/SIGINT, then
        drain gracefully."""
        import signal

        await self.start_async()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        await self.shutdown_async(drain=True)

    # -- embedded mode: a private event-loop thread (tests, notebooks) --
    def start(self) -> "ServiceServer":
        """Serve from a daemon thread running a private event loop."""
        if self._thread is not None:
            return self
        ready = threading.Event()
        failure: List[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start_async())
            except BaseException as exc:  # surface bind errors to start()
                failure.append(exc)
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()
                self._stopped.set()

        self._thread = threading.Thread(
            target=_run, name="repro-service", daemon=True
        )
        self._thread.start()
        ready.wait()
        if failure:
            self._thread = None
            raise failure[0]
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain and stop the embedded server thread (idempotent)."""
        thread, loop = self._thread, self._loop
        if thread is None or loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.shutdown_async(drain=drain), loop
        )
        try:
            future.result(timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "serving on %s" % self.url if self._started_at else "stopped"
        return "ServiceServer(%s, %d tenants)" % (state, len(self.sessions))
