"""Wire protocol of the query service: request parsing, response shapes.

Requests are JSON over POST (``Content-Type: application/json``); every
response — success or error — is a JSON object.  Error bodies share the
:func:`repro.telemetry.routes.error_response` shape (``{"error": ...}``),
so a service client and a metrics-server client read failures the same
way.

Request bodies:

* ``POST /query`` — ``{"query": "<SPARQL or algebraic text>"}``; optional
  ``"maximal": true`` evaluates under the maximal-mapping semantics
  ``p_m(D)``;
* ``POST /ask`` — ``{"query": ..., "candidate": {"?x": "value", ...}}`` —
  is the candidate mapping an answer?
* ``POST /explain`` — ``{"query": ...}`` — the static EXPLAIN profile,
  no evaluation.

Success bodies (see :func:`encode_result` / :func:`encode_ask` /
:func:`encode_explain`) always carry ``tenant`` and ``op``; evaluation
responses add ``rows``, the sorted ``answers`` (each a
``{"?var": value}`` object, missing optionals absent), wall time, and
the ``trace_id`` that correlates the response with the obslog lines,
spans, and profiler samples of its execution.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..core.mappings import Mapping
from ..exceptions import ReproError
from ..serialize import SerializationError, mapping_to_json

__all__ = [
    "MAX_BODY_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryRequest",
    "encode_answers",
    "encode_ask",
    "encode_explain",
    "encode_result",
]

#: Stamped on every success response.
PROTOCOL_VERSION = 1

#: Largest request body the service accepts (413 beyond this).
MAX_BODY_BYTES = 1 << 20

#: Operations a request can name.
OPS = ("query", "query_maximal", "ask", "explain")


class ProtocolError(ReproError):
    """A malformed request; carries the HTTP status to answer with."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class QueryRequest:
    """One validated service request: operation, query text, candidate."""

    __slots__ = ("op", "query", "candidate")

    def __init__(self, op: str, query: str, candidate: Optional[Mapping] = None):
        self.op = op
        self.query = query
        self.candidate = candidate

    @classmethod
    def from_body(cls, op: str, body: bytes) -> "QueryRequest":
        """Parse and validate a request body for the ``op`` route.

        Raises :class:`ProtocolError` (mapped to a 400 response) on
        anything malformed: non-JSON bodies, non-object payloads, a
        missing/empty ``query``, a missing ``ask`` candidate, or unknown
        payload keys (catching client typos like ``"querry"``).
        """
        if op not in OPS:
            raise ProtocolError("unknown operation %r" % (op,))
        if not body:
            raise ProtocolError("empty request body: expected a JSON object")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError("request body is not valid JSON: %s" % exc)
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        allowed = {"query"}
        if op == "query":
            allowed.add("maximal")
        if op == "ask":
            allowed.add("candidate")
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ProtocolError(
                "unknown request field(s) %s (allowed: %s)"
                % (", ".join(map(repr, unknown)), ", ".join(sorted(allowed)))
            )
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ProtocolError("'query' must be a non-empty string")
        if op == "query" and payload.get("maximal"):
            if payload["maximal"] is not True:
                raise ProtocolError("'maximal' must be a boolean")
            op = "query_maximal"
        candidate: Optional[Mapping] = None
        if op == "ask":
            raw = payload.get("candidate")
            if not isinstance(raw, dict):
                raise ProtocolError(
                    "'candidate' must be a JSON object of "
                    '{"?var": value} bindings'
                )
            try:
                candidate = Mapping(raw)
            except (TypeError, ValueError) as exc:
                raise ProtocolError("invalid candidate mapping: %s" % exc)
        return cls(op, query, candidate)

    def __repr__(self) -> str:
        return "QueryRequest(%s, %r)" % (self.op, self.query[:40])


def encode_answers(answers) -> List[Dict[str, Any]]:
    """Answer mappings as sorted ``{"?var": value}`` objects.

    Values that are not JSON-native (arbitrary constants are allowed in
    the algebra) fall back to their ``repr`` so a response is always
    serialisable.
    """
    encoded = []
    for mapping in sorted(answers, key=repr):
        try:
            encoded.append(mapping_to_json(mapping))
        except SerializationError:
            encoded.append(
                {
                    "?%s" % var.name: repr(val.value)
                    for var, val in sorted(
                        mapping.items(), key=lambda kv: kv[0].name
                    )
                }
            )
    return encoded


def _base(op: str, tenant: str) -> Dict[str, Any]:
    return {"protocol": PROTOCOL_VERSION, "op": op, "tenant": tenant}


def encode_result(
    op: str,
    tenant: str,
    result,
    wall_seconds: float,
    coalesced: bool = False,
) -> Dict[str, Any]:
    """The success body of a ``query`` / ``query_maximal`` evaluation."""
    body = _base(op, tenant)
    body["rows"] = len(result.answers)
    body["answers"] = encode_answers(result.answers)
    body["wall_ms"] = round(wall_seconds * 1000.0, 3)
    resources = getattr(result, "resources", None)
    body["trace_id"] = getattr(resources, "trace_id", None)
    if resources is not None:
        body["resources"] = {
            "wall_seconds": resources.wall_seconds,
            "peak_intermediate_rows": resources.peak_intermediate_rows,
            "subqueries": resources.subqueries,
        }
    if coalesced:
        body["coalesced"] = True
    return body


def encode_ask(
    tenant: str, decision: bool, wall_seconds: float
) -> Dict[str, Any]:
    """The success body of an ``ask`` decision."""
    body = _base("ask", tenant)
    body["answer"] = bool(decision)
    body["wall_ms"] = round(wall_seconds * 1000.0, 3)
    return body


def encode_explain(tenant: str, profile) -> Dict[str, Any]:
    """The success body of an ``explain`` request: the static profile."""
    body = _base("explain", tenant)
    body["fingerprint"] = profile.fingerprint[:16]
    body["eval_route"] = profile.eval_route()
    body["partial_eval_route"] = profile.partial_eval_route()
    body["table"] = profile.as_table()
    return body
