"""Tenant registry: API keys, QoS tiers, per-tenant budgets and caches.

A **tenant** is one API-key-authenticated consumer of the query service.
Each tenant belongs to a **QoS tier** bundling everything the service
enforces per tenant:

* ``max_concurrency`` — queries of this tenant allowed in flight at
  once; further requests queue briefly, then are shed with ``429``;
* ``queue_timeout`` — how long an over-cap request may wait for a slot
  before shedding;
* ``retry_after`` — the ``Retry-After`` header value sent on a shed;
* ``budget`` — the per-query :class:`~repro.telemetry.resources.
  ResourceBudget` (wall/memory/intermediate-rows soft+hard limits)
  applied to every query the tenant runs;
* ``cache_size`` — the LRU bound of the tenant's private version-keyed
  :class:`~repro.storage.cache.ResultCache`.

Tenants are declared in a JSON file (``repro serve --tenants FILE``)::

    {
      "tiers": {
        "gold":   {"max_concurrency": 8, "queue_timeout_ms": 250,
                   "cache_size": 256,
                   "budget": {"hard_wall_seconds": 5.0}},
        "bronze": {"max_concurrency": 2, "queue_timeout_ms": 50,
                   "retry_after_seconds": 2,
                   "budget": {"hard_intermediate_rows": 100000}}
      },
      "tenants": [
        {"name": "acme",   "api_key": "acme-key-1",   "tier": "gold"},
        {"name": "initech", "api_key": "initech-key", "tier": "bronze"}
      ]
    }

``tiers`` may be omitted or partial — the named defaults
(:data:`DEFAULT_TIERS`: ``gold``/``silver``/``bronze``) fill the gaps.
``budget`` keys are exactly the :class:`ResourceBudget` constructor
arguments.  :func:`default_registry` builds the zero-configuration
single-tenant registry (one anonymous ``public`` tenant) used when no
tenants file is given.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional

from ..exceptions import ReproError
from ..telemetry.resources import ResourceBudget

__all__ = [
    "DEFAULT_TIERS",
    "QoSTier",
    "TenantConfig",
    "TenantRegistry",
    "TenantsFileError",
    "default_registry",
    "load_tenants",
]

#: The header clients authenticate with.
API_KEY_HEADER = "X-Api-Key"


class TenantsFileError(ReproError):
    """The tenants file is malformed (bad JSON, unknown tier, ...)."""


class QoSTier:
    """One quality-of-service tier: admission caps + per-query budget."""

    __slots__ = (
        "name", "max_concurrency", "queue_timeout", "retry_after",
        "cache_size", "budget",
    )

    def __init__(
        self,
        name: str,
        max_concurrency: int = 4,
        queue_timeout: float = 0.25,
        retry_after: float = 1.0,
        cache_size: int = 128,
        budget: Optional[ResourceBudget] = None,
    ):
        if max_concurrency < 1:
            raise TenantsFileError(
                "tier %r: max_concurrency must be >= 1" % name
            )
        self.name = name
        self.max_concurrency = int(max_concurrency)
        self.queue_timeout = float(queue_timeout)
        self.retry_after = float(retry_after)
        self.cache_size = int(cache_size)
        self.budget = budget

    def describe(self) -> Dict[str, Any]:
        """The public (key-free) JSON view served by ``/tenants``."""
        budget = None
        if self.budget is not None:
            budget = {
                slot: getattr(self.budget, slot)
                for slot in self.budget.__slots__
                if getattr(self.budget, slot) is not None
            }
        return {
            "name": self.name,
            "max_concurrency": self.max_concurrency,
            "queue_timeout_ms": round(self.queue_timeout * 1000.0, 3),
            "retry_after_seconds": self.retry_after,
            "cache_size": self.cache_size,
            "budget": budget,
        }

    def __repr__(self) -> str:
        return "QoSTier(%r, max_concurrency=%d)" % (
            self.name, self.max_concurrency,
        )


def _default_tiers() -> Dict[str, QoSTier]:
    return {
        "gold": QoSTier(
            "gold", max_concurrency=8, queue_timeout=0.5, retry_after=0.5,
            cache_size=256,
        ),
        "silver": QoSTier(
            "silver", max_concurrency=4, queue_timeout=0.25, retry_after=1.0,
            cache_size=128,
            budget=ResourceBudget(hard_wall_seconds=30.0),
        ),
        "bronze": QoSTier(
            "bronze", max_concurrency=2, queue_timeout=0.1, retry_after=2.0,
            cache_size=64,
            budget=ResourceBudget(
                hard_wall_seconds=10.0, hard_intermediate_rows=1_000_000,
            ),
        ),
    }


#: The built-in tiers a tenants file may reference without defining.
DEFAULT_TIERS: Dict[str, QoSTier] = _default_tiers()

_BUDGET_KEYS = frozenset(ResourceBudget.__slots__)


def _budget_from_dict(tier_name: str, data: Any) -> Optional[ResourceBudget]:
    if data is None:
        return None
    if not isinstance(data, dict):
        raise TenantsFileError(
            "tier %r: 'budget' must be an object of ResourceBudget limits"
            % tier_name
        )
    unknown = sorted(set(data) - _BUDGET_KEYS)
    if unknown:
        raise TenantsFileError(
            "tier %r: unknown budget limit(s) %s (allowed: %s)"
            % (tier_name, ", ".join(map(repr, unknown)),
               ", ".join(sorted(_BUDGET_KEYS)))
        )
    return ResourceBudget(**data)


def _tier_from_dict(name: str, data: Any) -> QoSTier:
    if not isinstance(data, dict):
        raise TenantsFileError("tier %r must be a JSON object" % name)
    known = {
        "max_concurrency", "queue_timeout_ms", "retry_after_seconds",
        "cache_size", "budget",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        raise TenantsFileError(
            "tier %r: unknown field(s) %s (allowed: %s)"
            % (name, ", ".join(map(repr, unknown)), ", ".join(sorted(known)))
        )
    defaults = DEFAULT_TIERS.get(name)
    return QoSTier(
        name,
        max_concurrency=data.get(
            "max_concurrency",
            defaults.max_concurrency if defaults else 4,
        ),
        queue_timeout=data.get(
            "queue_timeout_ms",
            (defaults.queue_timeout if defaults else 0.25) * 1000.0,
        ) / 1000.0,
        retry_after=data.get(
            "retry_after_seconds",
            defaults.retry_after if defaults else 1.0,
        ),
        cache_size=data.get(
            "cache_size", defaults.cache_size if defaults else 128
        ),
        budget=(
            _budget_from_dict(name, data["budget"])
            if "budget" in data
            else (defaults.budget if defaults else None)
        ),
    )


class TenantConfig:
    """One tenant: a name, its API key, and the tier it belongs to."""

    __slots__ = ("name", "api_key", "tier")

    def __init__(self, name: str, api_key: Optional[str], tier: QoSTier):
        self.name = name
        #: ``None`` means the tenant accepts unauthenticated requests
        #: (the zero-configuration ``public`` tenant).
        self.api_key = api_key
        self.tier = tier

    def key_fingerprint(self) -> Optional[str]:
        """A non-reversible key identifier safe to expose in ``/tenants``."""
        if self.api_key is None:
            return None
        return hashlib.sha256(self.api_key.encode("utf-8")).hexdigest()[:12]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "tier": self.tier.name,
            "api_key_sha256_12": self.key_fingerprint(),
            "qos": self.tier.describe(),
        }

    def __repr__(self) -> str:
        return "TenantConfig(%r, tier=%r)" % (self.name, self.tier.name)


class TenantRegistry:
    """API-key → :class:`TenantConfig` lookup for the service."""

    def __init__(self, tenants: List[TenantConfig]):
        if not tenants:
            raise TenantsFileError("at least one tenant is required")
        self._by_name: Dict[str, TenantConfig] = {}
        self._by_key: Dict[str, TenantConfig] = {}
        self._anonymous: Optional[TenantConfig] = None
        for tenant in tenants:
            if tenant.name in self._by_name:
                raise TenantsFileError("duplicate tenant name %r" % tenant.name)
            self._by_name[tenant.name] = tenant
            if tenant.api_key is None:
                if self._anonymous is not None:
                    raise TenantsFileError(
                        "only one tenant may omit 'api_key' (the anonymous "
                        "default); both %r and %r do"
                        % (self._anonymous.name, tenant.name)
                    )
                self._anonymous = tenant
            else:
                if tenant.api_key in self._by_key:
                    raise TenantsFileError(
                        "duplicate api_key shared by tenants %r and %r"
                        % (self._by_key[tenant.api_key].name, tenant.name)
                    )
                self._by_key[tenant.api_key] = tenant

    @classmethod
    def from_dict(cls, data: Any) -> "TenantRegistry":
        """Build a registry from the tenants-file JSON structure."""
        if not isinstance(data, dict):
            raise TenantsFileError("tenants file must be a JSON object")
        unknown = sorted(set(data) - {"tiers", "tenants"})
        if unknown:
            raise TenantsFileError(
                "unknown top-level field(s) %s (allowed: 'tiers', 'tenants')"
                % ", ".join(map(repr, unknown))
            )
        tiers = _default_tiers()
        raw_tiers = data.get("tiers", {})
        if not isinstance(raw_tiers, dict):
            raise TenantsFileError("'tiers' must be a JSON object")
        for name, tier_data in raw_tiers.items():
            tiers[name] = _tier_from_dict(name, tier_data)
        raw_tenants = data.get("tenants")
        if not isinstance(raw_tenants, list) or not raw_tenants:
            raise TenantsFileError("'tenants' must be a non-empty array")
        tenants = []
        for i, entry in enumerate(raw_tenants):
            if not isinstance(entry, dict):
                raise TenantsFileError("tenants[%d] must be a JSON object" % i)
            unknown = sorted(set(entry) - {"name", "api_key", "tier"})
            if unknown:
                raise TenantsFileError(
                    "tenants[%d]: unknown field(s) %s "
                    "(allowed: 'name', 'api_key', 'tier')"
                    % (i, ", ".join(map(repr, unknown)))
                )
            name = entry.get("name")
            if not isinstance(name, str) or not name:
                raise TenantsFileError(
                    "tenants[%d]: 'name' must be a non-empty string" % i
                )
            tier_name = entry.get("tier", "silver")
            if tier_name not in tiers:
                raise TenantsFileError(
                    "tenants[%d] (%r): unknown tier %r (defined: %s)"
                    % (i, name, tier_name, ", ".join(sorted(tiers)))
                )
            api_key = entry.get("api_key")
            if api_key is not None and (
                not isinstance(api_key, str) or not api_key
            ):
                raise TenantsFileError(
                    "tenants[%d] (%r): 'api_key' must be a non-empty string "
                    "or omitted for the anonymous tenant" % (i, name)
                )
            tenants.append(TenantConfig(name, api_key, tiers[tier_name]))
        return cls(tenants)

    # ------------------------------------------------------------------
    def authenticate(self, api_key: Optional[str]) -> Optional[TenantConfig]:
        """The tenant for ``api_key`` — the anonymous tenant (if any) when
        no key is presented; ``None`` when authentication fails."""
        if api_key:
            return self._by_key.get(api_key)
        return self._anonymous

    def get(self, name: str) -> Optional[TenantConfig]:
        return self._by_name.get(name)

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def snapshot(self) -> List[Dict[str, Any]]:
        """The key-free ``/tenants`` payload."""
        return [self._by_name[name].describe() for name in self.names()]

    def __iter__(self) -> Iterator[TenantConfig]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __repr__(self) -> str:
        return "TenantRegistry(%s)" % ", ".join(self.names())


def load_tenants(path: str) -> TenantRegistry:
    """Read and validate a tenants file."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise TenantsFileError("cannot read tenants file %s: %s" % (path, exc))
    except ValueError as exc:
        raise TenantsFileError(
            "tenants file %s is not valid JSON: %s" % (path, exc)
        )
    return TenantRegistry.from_dict(data)


def default_registry() -> TenantRegistry:
    """The zero-configuration registry: one anonymous ``public`` tenant
    on the ``gold`` tier (no API key required)."""
    return TenantRegistry(
        [TenantConfig("public", None, DEFAULT_TIERS["gold"])]
    )
