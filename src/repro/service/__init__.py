"""The multi-tenant async query service (``repro serve``).

A stdlib-``asyncio`` HTTP daemon that owns a pool of warm per-tenant
:class:`~repro.engine.Session`\\ s over one shared planner and storage
backend, fronted by admission control (per-tenant concurrency caps, a
global in-flight ceiling, 429 load shedding) and request coalescing.
See :mod:`repro.service.server` for the architecture and
``docs/SERVICE.md`` for the operator guide.

::

    from repro.service import ServiceServer, load_tenants

    server = ServiceServer(triples, tenants=load_tenants("tenants.json"))
    with server:                      # embedded mode; `repro serve` for prod
        requests.post(server.url + "/query", json={"query": text},
                      headers={"X-Api-Key": "..."})
"""

from .admission import AdmissionController, AdmissionSlot, LoadShedError
from .protocol import (
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    QueryRequest,
)
from .server import ServiceServer
from .tenancy import (
    API_KEY_HEADER,
    DEFAULT_TIERS,
    QoSTier,
    TenantConfig,
    TenantRegistry,
    TenantsFileError,
    default_registry,
    load_tenants,
)

__all__ = [
    "API_KEY_HEADER",
    "AdmissionController",
    "AdmissionSlot",
    "DEFAULT_TIERS",
    "LoadShedError",
    "MAX_BODY_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QoSTier",
    "QueryRequest",
    "ServiceServer",
    "TenantConfig",
    "TenantRegistry",
    "TenantsFileError",
    "default_registry",
    "load_tenants",
]
