"""Admission control: per-tenant concurrency caps and load shedding.

The :class:`AdmissionController` is the service's front gate.  Every
request must hold an admission slot while it executes:

* each tenant may have at most ``tier.max_concurrency`` queries in
  flight; beyond that, requests **queue briefly** (up to
  ``tier.queue_timeout`` seconds) waiting for a slot;
* a **global in-flight ceiling** bounds the whole process regardless of
  tenant mix, so one process never takes on more concurrent evaluation
  than it was sized for;
* when the wait times out — or the global ceiling would be breached for
  longer than the tenant's patience — the request is **shed** with a
  :class:`LoadShedError`, which the server answers as ``429`` with a
  ``Retry-After`` header (the tier's ``retry_after``).

Shedding at the gate is what keeps the served requests fast: a saturated
tier fails quickly with a clear signal instead of stacking unbounded
queues in front of the evaluator.  Everything is accounted in the shared
metrics registry with per-tenant labels::

    service.admitted{tenant=...}        # granted slots
    service.shed{tenant=..., scope=...} # 429s, scope = tenant | global
    service.queue_wait_seconds{tenant=...}
    service.in_flight{tenant=...}       # live gauge
    service.in_flight_global

The controller is single-event-loop asyncio (the service's model): all
state transitions happen on the loop, so counters need no locks; only
the metrics registry (shared with scrape threads) is thread-safe.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from ..exceptions import ReproError
from ..telemetry.metrics import MetricsRegistry
from .tenancy import TenantConfig

__all__ = ["AdmissionController", "AdmissionSlot", "LoadShedError"]

#: Default process-wide in-flight ceiling.
DEFAULT_GLOBAL_LIMIT = 64


class LoadShedError(ReproError):
    """The request was shed; answer 429 with ``Retry-After``."""

    def __init__(self, tenant: str, scope: str, retry_after: float, waited: float):
        super().__init__(
            "tenant %r shed after %.0f ms (%s concurrency limit reached)"
            % (tenant, waited * 1000.0, scope)
        )
        self.tenant = tenant
        #: ``"tenant"`` (the tier cap bound) or ``"global"`` (the
        #: process ceiling bound).
        self.scope = scope
        self.retry_after = retry_after
        self.waited = waited


class AdmissionSlot:
    """A granted slot; an async context manager releasing on exit."""

    __slots__ = ("_controller", "_tenant", "_released")

    def __init__(self, controller: "AdmissionController", tenant: TenantConfig):
        self._controller = controller
        self._tenant = tenant
        self._released = False

    async def __aenter__(self) -> "AdmissionSlot":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._tenant)


class AdmissionController:
    """Grant, queue, or shed admission to the evaluation executor."""

    def __init__(
        self,
        global_limit: int = DEFAULT_GLOBAL_LIMIT,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if global_limit < 1:
            raise ValueError("global_limit must be >= 1")
        self.global_limit = int(global_limit)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._in_flight: Dict[str, int] = {}
        self._in_flight_global = 0
        self._waiting = 0
        self._condition: Optional[asyncio.Condition] = None
        # Lifetime tallies for /healthz (metrics hold the labeled detail).
        self.admitted_total = 0
        self.shed_total = 0

    def _cond(self) -> asyncio.Condition:
        # Created lazily so the controller can be built off-loop (the
        # server constructs it before its event loop exists).
        if self._condition is None:
            self._condition = asyncio.Condition()
        return self._condition

    # ------------------------------------------------------------------
    def _has_capacity(self, tenant: TenantConfig) -> Optional[str]:
        """``None`` when a slot is free, else which scope is saturated."""
        if self._in_flight_global >= self.global_limit:
            return "global"
        if self._in_flight.get(tenant.name, 0) >= tenant.tier.max_concurrency:
            return "tenant"
        return None

    async def admit(self, tenant: TenantConfig) -> AdmissionSlot:
        """Wait up to the tier's ``queue_timeout`` for a slot.

        Returns an :class:`AdmissionSlot` (use ``async with``) or raises
        :class:`LoadShedError`.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        condition = self._cond()
        async with condition:
            scope = self._has_capacity(tenant)
            if scope is not None:
                deadline = start + tenant.tier.queue_timeout
                self._waiting += 1
                self.metrics.gauge("service.queued").set(self._waiting)
                try:
                    while scope is not None:
                        remaining = deadline - loop.time()
                        if remaining <= 0:
                            self._shed(tenant, scope, loop.time() - start)
                        try:
                            await asyncio.wait_for(condition.wait(), remaining)
                        except asyncio.TimeoutError:
                            scope = self._has_capacity(tenant)
                            if scope is not None:
                                self._shed(tenant, scope, loop.time() - start)
                            break
                        scope = self._has_capacity(tenant)
                finally:
                    self._waiting -= 1
                    self.metrics.gauge("service.queued").set(self._waiting)
            self._grant(tenant, loop.time() - start)
            return AdmissionSlot(self, tenant)

    def _shed(self, tenant: TenantConfig, scope: str, waited: float) -> None:
        self.shed_total += 1
        self.metrics.counter(
            "service.shed", labels={"tenant": tenant.name, "scope": scope}
        ).inc()
        raise LoadShedError(tenant.name, scope, tenant.tier.retry_after, waited)

    def _grant(self, tenant: TenantConfig, waited: float) -> None:
        self.admitted_total += 1
        self._in_flight[tenant.name] = self._in_flight.get(tenant.name, 0) + 1
        self._in_flight_global += 1
        self.metrics.counter(
            "service.admitted", labels={"tenant": tenant.name}
        ).inc()
        self.metrics.histogram(
            "service.queue_wait_seconds", labels={"tenant": tenant.name}
        ).observe(waited)
        self._set_gauges(tenant.name)

    def _release(self, tenant: TenantConfig) -> None:
        self._in_flight[tenant.name] = max(
            0, self._in_flight.get(tenant.name, 0) - 1
        )
        self._in_flight_global = max(0, self._in_flight_global - 1)
        self._set_gauges(tenant.name)
        condition = self._cond()

        async def _notify() -> None:
            async with condition:
                condition.notify_all()

        asyncio.ensure_future(_notify())

    def _set_gauges(self, tenant_name: str) -> None:
        self.metrics.gauge(
            "service.in_flight", labels={"tenant": tenant_name}
        ).set(self._in_flight.get(tenant_name, 0))
        self.metrics.gauge("service.in_flight_global").set(
            self._in_flight_global
        )

    # ------------------------------------------------------------------
    @property
    def in_flight_global(self) -> int:
        return self._in_flight_global

    def snapshot(self) -> Dict[str, Any]:
        """The admission state for ``/healthz`` and ``/tenants``."""
        return {
            "global_limit": self.global_limit,
            "in_flight_global": self._in_flight_global,
            "queued": self._waiting,
            "in_flight": {
                name: count
                for name, count in sorted(self._in_flight.items())
                if count
            },
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
        }

    def __repr__(self) -> str:
        return "AdmissionController(%d/%d in flight, %d queued)" % (
            self._in_flight_global, self.global_limit, self._waiting,
        )
