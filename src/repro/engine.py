"""Session API: the convenience layer downstream applications use.

Wraps a database (relational or RDF) with a query interface that hides
parsing, routing and caching:

    >>> from repro.engine import Session
    >>> from repro.workloads.families import example2_graph
    >>> session = Session(example2_graph())
    >>> result = session.query(
    ...     "SELECT ?x ?z WHERE { ?x recorded_by ?y "
    ...     "OPTIONAL { ?x NME_rating ?z } }")
    >>> len(result)
    2

A :class:`Result` carries the answer set plus lazy access to maximal
answers, witnesses, and the query profile.  Each Session owns a private
:class:`~repro.planner.planner.Planner`: parsed queries are LRU-cached by
text, structural analyses are memoized by fingerprint, and decision
problems (``ask``/``contains``/``is_partial``) route to the tractable
algorithms of Sections 3 through the planner's engine router.
:meth:`Session.stats` reports the accumulated counters (cache hit rates,
per-engine selections, analysis vs. engine time).

Parallelism (:mod:`repro.parallel`) is opt-in via ``jobs=``: a session
constructed with ``jobs=4`` dispatches independent subtrees and semijoin
passes of each query to a worker pool, and :meth:`Session.run_batch` /
:meth:`Session.map` fan whole query lists out — over threads by default,
or separate processes with ``executor="process"`` for CPU parallelism.
Results are bit-identical to sequential evaluation either way.

The Session accepts any :class:`~repro.storage.base.StorageBackend`
(:class:`~repro.core.database.Database`/
:class:`~repro.storage.memory.MemoryBackend`,
:class:`~repro.storage.sqlite.SQLiteBackend`), an
:class:`~repro.rdf.graph.RDFGraph`, or an iterable of ground atoms —
``backend="sqlite"`` (or the ``REPRO_BACKEND`` environment variable)
selects the storage kind, and ``path=`` puts a SQLite session on disk:

    >>> s = Session(backend="memory")     # empty in-memory session
    >>> s.size
    0

Finished answers are memoized in a version-keyed
:class:`~repro.storage.cache.ResultCache`: repeating a query against an
unmodified database is a cache hit, and any ``add``/``update``/``remove``
bumps the backend's data version so stale entries are never served.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Union

from .core.atoms import Atom
from .core.database import Database
from .core.mappings import Mapping
from .exceptions import ParseError
from .parallel.pool import EXECUTORS, WorkerPool, use_pool
from .rdf.graph import RDFGraph
from .rdf.parser import parse_query
from .rdf.sparql import parse_sparql
from .planner.planner import Planner
from .storage import ResultCache, StorageBackend, to_backend
from .storage.cache import DEFAULT_SIZE as DEFAULT_CACHE_SIZE
from .telemetry.insight import STATS_SCHEMA, QueryStatsStore
from .telemetry.obslog import QueryLog, QueryObservation
from .telemetry.profiler import current_profiler, gc_summary
from .telemetry.resources import ResourceBudget
from .telemetry.tracer import Tracer, current_tracer, tracing
from .wdpt.eval_tractable import eval_tractable
from .wdpt.evaluation import evaluate, evaluate_max
from .wdpt.explain import WDPTProfile
from .wdpt.max_eval import max_eval
from .wdpt.partial_eval import partial_eval
from .wdpt.wdpt import WDPT
from .wdpt.witness import AnswerWitness, witness

Query = Union[str, WDPT]
DataSource = Union[StorageBackend, RDFGraph, Iterable[Atom]]

#: Environment variable naming the default storage backend kind.
BACKEND_ENV = "REPRO_BACKEND"

#: Environment variable giving the default shard count for the sharded
#: backend (``Session(shards=...)`` and ``--shards`` override it).
SHARDS_ENV = "REPRO_SHARDS"


class Result:
    """The outcome of :meth:`Session.query`.

    Iterable over the answer mappings; also exposes the maximal-mapping
    restriction (Section 3.4), per-answer witnesses, and the EXPLAIN
    profile of the executed query.
    """

    def __init__(self, session: "Session", query: WDPT, answers: FrozenSet[Mapping]):
        self._session = session
        self.query = query
        self.answers = answers
        self._profile: Optional[WDPTProfile] = None
        #: :class:`~repro.telemetry.resources.ResourceUsage` when the
        #: session tracks resources; ``None`` otherwise.
        self.resources = None
        #: Sampling-profiler samples attributed to this query's trace
        #: (:mod:`repro.telemetry.profiler`) when a profiler was running;
        #: ``None`` otherwise.  Feed them to ``folded_text`` /
        #: ``to_speedscope`` for a per-query flamegraph.
        self.profile_samples = None

    def __iter__(self):
        return iter(sorted(self.answers, key=repr))

    def __len__(self) -> int:
        return len(self.answers)

    def __contains__(self, mapping: Mapping) -> bool:
        return mapping in self.answers

    def maximal(self) -> FrozenSet[Mapping]:
        """The ⊑-maximal answers, ``p_m(D)``."""
        from .core.mappings import maximal_mappings

        return maximal_mappings(self.answers)

    def witness(self, answer: Mapping) -> Optional[AnswerWitness]:
        """A verified provenance certificate for ``answer``."""
        return witness(self.query, self._session.database, answer)

    def profile(self) -> WDPTProfile:
        """The EXPLAIN profile of the query — memoized on the result and
        served from the planner's EXPLAIN cache, so repeated calls (and
        repeated ``session.explain`` on the same shape) are cache hits."""
        if self._profile is None:
            self._profile = self._session.planner.explain_wdpt(self.query)
        return self._profile

    def to_table(self, limit: Optional[int] = None) -> str:
        """Render answers as a fixed-width table (missing optionals = ``-``)."""
        from .benchharness.reporting import format_table

        columns = [v for v in self.query.free_variables]
        rows = []
        for answer in self:
            if limit is not None and len(rows) >= limit:
                break
            rows.append(
                [
                    repr(answer[v]) if v in answer else "-"
                    for v in columns
                ]
            )
        return format_table([repr(v) for v in columns], rows)

    def __repr__(self) -> str:
        return "Result(%d answers)" % len(self.answers)


class Session:
    """A database plus a query planner (parse cache, memoized structural
    analyses, plan-aware routing, instrumentation).

    Keyword arguments beyond ``data``:

    * ``backend=`` — storage kind, ``"memory"``, ``"sqlite"``, or
      ``"sharded"`` (:mod:`repro.storage`); an explicitly passed backend
      instance is used as-is, raw data (iterables, graphs) defaults to
      the ``REPRO_BACKEND`` environment variable, else to memory;
    * ``path=`` — with ``backend="sqlite"``, the on-disk database file
      (created when missing, resumed when present);
    * ``shards=`` — with ``backend="sharded"`` (implied when ``shards``
      is set), the number of hash-partitioned shard processes
      (:mod:`repro.dist`); defaults to the ``REPRO_SHARDS`` environment
      variable, else 2.  A session that built its own sharded backend
      shuts the shard processes down in :meth:`close`;
    * ``cache=`` — the result cache: ``True``/``None`` (default) enables
      a version-keyed :class:`~repro.storage.cache.ResultCache`,
      ``False`` disables caching, or pass a ``ResultCache`` to share one;
    * ``cache_size=`` — LRU bound of the default cache;
    * ``planner=`` — share an existing :class:`Planner` (warmed caches)
      instead of the private default;
    * ``obslog=`` — a :class:`~repro.telemetry.obslog.QueryLog` receiving
      one structured JSON record per query lifecycle event (``None``
      disables observation at zero per-query cost);
    * ``budgets=`` — a :class:`~repro.telemetry.resources.ResourceBudget`
      applied to every query (soft limits are logged, hard limits raise
      :class:`~repro.exceptions.ResourceBudgetExceeded`);
    * ``track_resources=`` — account wall/CPU/peak-rows per query even
      without budgets (``Result.resources``);
    * ``stats_store=`` — a
      :class:`~repro.telemetry.insight.QueryStatsStore` accumulating
      per-query-shape execution history (latency, rows, cache hits,
      kernel outcomes, q-errors); when set, the planner also consults it
      to prefer the kernel that historically won for a fingerprint;
    * ``jobs=`` — worker count for parallel evaluation (:mod:`repro.parallel`);
      ``None``/``1`` keeps everything sequential;
    * ``executor=`` — the :meth:`run_batch` backend, ``"thread"``
      (default; shared session, no pickling) or ``"process"`` (CPU
      parallelism; per-worker sessions).  Intra-query fan-out always uses
      threads.
    * ``tenant=`` — name of the tenant this session serves
      (:mod:`repro.service`): obslog records emitted by the session are
      stamped ``tenant=<name>`` (via ``QueryLog.bound``) and the
      ``/debug/queries`` entries carry it too.

    >>> from repro.core.atoms import atom
    >>> s = Session([atom("E", 1, 2)])
    >>> s.size
    1

    A session with workers is also a context manager — leaving the block
    shuts its pools down:

    >>> with Session([atom("E", 1, 2)], jobs=2) as s:
    ...     s.size
    1
    """

    def __init__(
        self,
        data: Optional[DataSource] = None,
        planner: Optional[Planner] = None,
        obslog: Optional["QueryLog"] = None,
        budgets: Optional["ResourceBudget"] = None,
        track_resources: bool = False,
        stats_store: Optional[QueryStatsStore] = None,
        jobs: Optional[int] = None,
        executor: str = "thread",
        backend: Optional[str] = None,
        path: Optional[str] = None,
        shards: Optional[int] = None,
        cache: Union[bool, ResultCache, None] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        tenant: Optional[str] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                "unknown executor %r (expected one of %s)"
                % (executor, ", ".join(EXECUTORS))
            )
        if isinstance(data, RDFGraph):
            data = data.to_database()
        kind = backend
        if kind is None and path is not None:
            kind = "sqlite"
        if kind is None and shards is not None:
            kind = "sharded"
        if kind is None and not isinstance(data, StorageBackend):
            # The env var only picks the default for *raw* data; an
            # explicitly passed backend instance is always used as-is
            # (converting would silently detach the session from it).
            kind = os.environ.get(BACKEND_ENV)
        if kind == "sharded" and shards is None:
            env_shards = os.environ.get(SHARDS_ENV, "").strip()
            shards = int(env_shards) if env_shards else None
        if kind is not None:
            self.database = to_backend(
                data if data is not None else (), kind, path=path,
                shards=shards,
            )
        elif isinstance(data, StorageBackend):
            self.database = data
        else:
            self.database = Database(data if data is not None else ())
        # A backend the session itself built (not handed in by the
        # caller) is the session's to tear down — close() stops the
        # shard processes of an owned sharded backend.
        self._owned_backend = kind is not None and self.database is not data
        self.planner = planner if planner is not None else Planner()
        #: Version-keyed finished-answer cache (``repro.storage.cache``);
        #: ``None`` when caching is disabled.
        self.result_cache: Optional[ResultCache]
        if isinstance(cache, ResultCache):
            self.result_cache = cache
        elif cache is None or cache:
            self.result_cache = ResultCache(
                cache_size, metrics=self.planner.metrics
            )
        else:
            self.result_cache = None
        #: Tenant this session serves (multi-tenant service layer,
        #: :mod:`repro.service`); ``None`` for a plain single-user session.
        #: When set, the session's obslog records and ``/debug/queries``
        #: entries are stamped with it.
        self.tenant = tenant
        if tenant is not None and obslog is not None:
            obslog = obslog.bound(tenant=tenant)
        #: Structured query-event log (``repro.telemetry.obslog.QueryLog``);
        #: ``None`` disables observation entirely (zero per-query cost).
        self.obslog = obslog
        # Backends with their own telemetry surface (the sharded backend
        # emits dist.* metrics and obslog events) get wired into the
        # registry/log of the session that *built* them; sessions handed
        # an existing backend (e.g. the per-tenant service sessions) must
        # not re-point its telemetry.
        if self._owned_backend:
            attach = getattr(self.database, "attach_telemetry", None)
            if attach is not None:
                attach(metrics=self.planner.metrics, obslog=obslog)
        #: Per-query resource budgets (``repro.telemetry.resources``).
        self.budgets = budgets
        #: Account resources even without budgets (``Result.resources``).
        self.track_resources = bool(track_resources or budgets is not None)
        #: Per-query-shape execution history (``telemetry.insight``);
        #: ``None`` disables stats accumulation.
        self.stats_store = stats_store
        if stats_store is not None and self.planner.stats_store is None:
            self.planner.stats_store = stats_store
        #: Default worker count for parallel evaluation (``None`` = serial).
        self.jobs = jobs
        #: Default :meth:`run_batch` executor kind.
        self.executor = executor
        self._pools: Dict[object, WorkerPool] = {}
        # Live observability state backing the /debug/queries endpoint:
        # observations currently inside their ``with`` block, plus a
        # bounded ring of finished ones.
        self._in_flight: Dict[int, QueryObservation] = {}
        self._recent_queries: List[Dict[str, Any]] = []
        self._debug_lock = threading.Lock()
        # Set by analyze() so EXPLAIN ANALYZE measures a real execution
        # instead of a result-cache hit; thread-local, so concurrent
        # queries on other threads keep their cache.
        self._cache_bypass = threading.local()

    # ------------------------------------------------------------------
    # Worker pools (repro.parallel)
    # ------------------------------------------------------------------
    def _pool_for(self, jobs: int, kind: str) -> WorkerPool:
        """The session's cached pool for ``(jobs, kind)``; created on
        first use (process pools carry an initializer building the
        per-worker session from this database)."""
        key = (jobs, kind)
        pool = self._pools.get(key)
        if pool is None:
            if kind == "process":
                from .parallel.batch import _init_process_worker

                pool = WorkerPool(
                    jobs,
                    "process",
                    initializer=_init_process_worker,
                    initargs=(
                        self.database,
                        self.budgets,
                        self.track_resources,
                        self.result_cache is not None,
                        self.obslog is not None,
                        self.stats_store is not None,
                    ),
                    metrics=self.planner.metrics,
                )
            else:
                pool = WorkerPool(jobs, "thread", metrics=self.planner.metrics)
            self._pools[key] = pool
        return pool

    def _intra_pool(self) -> Optional[WorkerPool]:
        """The thread pool intra-query dispatch sites fan out to, or
        ``None`` when the session is serial (``jobs`` unset or 1)."""
        if self.jobs is None or self.jobs <= 1:
            return None
        return self._pool_for(self.jobs, "thread")

    def close(self) -> None:
        """Shut down every worker pool this session created, plus the
        shard processes of a backend the session built itself
        (idempotent; a closed session still answers queries — a sharded
        backend respawns its shards from the write-ahead log on the next
        query)."""
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()
        if self._owned_backend:
            shutdown = getattr(self.database, "shutdown", None)
            if shutdown is not None:
                shutdown()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Batch evaluation (repro.parallel.batch)
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
        op: str = "query",
    ):
        """Evaluate many independent queries, ``jobs`` at a time.

        Returns a :class:`~repro.parallel.batch.BatchResult` whose
        ``results[i]`` matches ``queries[i]`` — identical to the
        sequential loop regardless of executor or scheduling.  ``op`` may
        be ``"query"``, ``"query_maximal"``, or ``"ask"`` (then
        ``queries`` holds ``(query, candidate)`` pairs).

        >>> from repro.workloads.families import example2_graph
        >>> s = Session(example2_graph())
        >>> q = ("SELECT ?x ?z WHERE { ?x recorded_by ?y "
        ...      "OPTIONAL { ?x NME_rating ?z } }")
        >>> batch = s.run_batch([q, q], jobs=2)
        >>> [len(r) for r in batch]
        [2, 2]
        >>> batch.answers() == [s.query(q).answers, s.query(q).answers]
        True
        """
        from .parallel.batch import run_batch

        return run_batch(self, queries, jobs=jobs, executor=executor, op=op)

    def map(
        self,
        queries,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
    ):
        """``[self.query(q) for q in queries]``, fanned over the pool —
        the list-of-:class:`Result` convenience over :meth:`run_batch`."""
        return list(self.run_batch(queries, jobs=jobs, executor=executor))

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    def parse(self, query: Query) -> WDPT:
        """Parse a query string (surface SPARQL, falling back to the
        paper's algebraic notation) or pass a WDPT through.  Parses are
        LRU-cached by text in the planner."""
        if isinstance(query, WDPT):
            return query
        return self.planner.cached_parse(query, _parse_text)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _observe(self, op: str, query: Query) -> Optional[QueryObservation]:
        """A per-call observation when obslog/budgets/resource tracking or
        a stats store is configured — or a sampling profiler is running,
        so profiled queries get a ``trace_id`` their samples attribute
        to; ``None`` (the zero-overhead path, one module-global read)
        otherwise."""
        if (
            self.obslog is None
            and not self.track_resources
            and self.stats_store is None
        ):
            profiler = current_profiler()
            if profiler is None or not profiler.running:
                return None
        return QueryObservation(self, op, query)

    @staticmethod
    def _attach_profile(result: Result, obs: QueryObservation) -> None:
        """Attach the running profiler's samples for this query's trace
        to the result (no-op when no profiler is running)."""
        profiler = current_profiler()
        if profiler is not None and profiler.running:
            result.profile_samples = profiler.samples_for_trace(obs.trace_id)

    # ------------------------------------------------------------------
    # Live query registry (/debug/queries)
    # ------------------------------------------------------------------
    #: How many finished queries :meth:`debug_queries` retains.
    RECENT_QUERIES = 64

    def _query_started(self, obs: QueryObservation) -> None:
        """Register an observation as in flight (called on ``__enter__``)."""
        with self._debug_lock:
            self._in_flight[id(obs)] = obs

    def _query_finished(
        self, obs: QueryObservation, wall: float, error: Optional[str]
    ) -> None:
        """Move an observation from in-flight to the recent ring."""
        record = {
            "op": obs.op,
            "query_id": obs.query_id,
            "trace_id": obs.trace_id,
            "rows": obs.n_rows,
            "wall_seconds": wall,
            "cache": obs.cache_outcome,
            "error": error,
        }
        if self.tenant is not None:
            record["tenant"] = self.tenant
        with self._debug_lock:
            self._in_flight.pop(id(obs), None)
            self._recent_queries.append(record)
            if len(self._recent_queries) > self.RECENT_QUERIES:
                del self._recent_queries[: len(self._recent_queries)
                                         - self.RECENT_QUERIES]

    def debug_queries(self) -> Dict[str, Any]:
        """The ``/debug/queries`` payload: queries currently executing
        (with their trace ids and elapsed time) plus the recent ring."""
        now = time.perf_counter()
        with self._debug_lock:
            in_flight = [
                {
                    "op": obs.op,
                    "query_id": obs.query_id,
                    "trace_id": obs.trace_id,
                    "elapsed_seconds": max(0.0, now - obs._start),
                    **({"tenant": self.tenant} if self.tenant else {}),
                }
                for obs in self._in_flight.values()
            ]
            recent = list(self._recent_queries)
        return {"in_flight": in_flight, "recent": recent}

    def debug_plans(self) -> Dict[str, Any]:
        """The ``/debug/plans`` payload: the planner's EXPLAIN cache
        joined with each shape's accumulated estimate accuracy."""
        store = self.stats_store
        plans = []
        for key, profile in self.planner.explains.items_snapshot():
            fingerprint = key if isinstance(key, str) else repr(key)
            entry: Dict[str, Any] = {
                "fingerprint": fingerprint[:16],
                "eval_route": profile.eval_route(),
                "partial_eval_route": profile.partial_eval_route(),
            }
            if store is not None:
                snapshot = store.snapshot(fingerprint[:16])
                if snapshot is not None:
                    entry["executions"] = snapshot["executions"]
                    entry["q_error"] = snapshot["q_error"]
            plans.append(entry)
        return {
            "plans": plans,
            "estimate_cache": self.planner.estimates.stats(),
            "profile_cache": self.planner.profiles.stats(),
        }

    def debug_stats(self) -> Dict[str, Any]:
        """The ``/debug/stats`` payload: the stats store dump (an empty
        schema-stamped dump when no store is configured)."""
        if self.stats_store is None:
            return {"schema": STATS_SCHEMA, "queries": {}}
        return self.stats_store.dump()

    def debug_providers(self) -> Dict[str, Any]:
        """Callables for :class:`~repro.telemetry.promhttp.MetricsServer`'s
        ``/debug/*`` routes
        (``MetricsServer(..., debug=session.debug_providers())``)."""
        return {
            "queries": self.debug_queries,
            "plans": self.debug_plans,
            "stats": self.debug_stats,
        }

    def _cache_key(self, op: str, p: WDPT, extra=None):
        """The :class:`ResultCache` key of one evaluation call, or
        ``None`` when caching is off (or bypassed by ``analyze`` on this
        thread — EXPLAIN ANALYZE must measure a real execution)."""
        if self.result_cache is None:
            return None
        if getattr(self._cache_bypass, "active", False):
            return None
        return ResultCache.key(
            op,
            p.structural_fingerprint(),
            self.database.backend_id,
            self.database.data_version,
            extra=extra,
        )

    def _note_cache(self, obs: Optional[QueryObservation], outcome: str) -> None:
        """Emit a ``query.cache`` obslog record (hit or miss) and note
        the outcome on the observation for the stats store."""
        if obs is None:
            return
        obs.cache_outcome = outcome
        if obs.log is not None:
            obs.log.emit(
                "query.cache",
                op=obs.op,
                query_id=obs.query_id,
                outcome=outcome,
            )

    def query(self, query: Query) -> Result:
        """Evaluate and return all answers."""
        obs = self._observe("query", query)
        if obs is None:
            return self._query_impl(query, None)
        with obs:
            result = self._query_impl(query, obs)
            obs.finish(result.query, len(result.answers))
        result.resources = obs.usage
        self._attach_profile(result, obs)
        return result

    def _query_impl(self, query: Query, obs: Optional[QueryObservation]) -> Result:
        tracer = current_tracer()
        with tracer.span("session.query"):
            with tracer.span("session.parse"):
                p = self.parse(query)
            with tracer.span("session.profile"):
                profile = self.planner.profile_wdpt(p)  # warm the shared analysis
            if obs is not None:
                obs.parsed(p)
            key = self._cache_key("query", p)
            if key is not None:
                answers = self.result_cache.get(key)
                if answers is not None:
                    self._note_cache(obs, "hit")
                    return Result(self, p, answers)
                self._note_cache(obs, "miss")
            start = time.perf_counter()
            with use_pool(self._intra_pool()):
                answers = evaluate(p, self.database, profile)
            self.planner.record_engine("wdpt-topdown", time.perf_counter() - start)
            if key is not None:
                self.result_cache.put(key, answers)
        return Result(self, p, answers)

    def query_maximal(self, query: Query) -> Result:
        """Evaluate under the maximal-mapping semantics ``p_m(D)``."""
        obs = self._observe("query_maximal", query)
        if obs is None:
            return self._query_maximal_impl(query, None)
        with obs:
            result = self._query_maximal_impl(query, obs)
            obs.finish(result.query, len(result.answers))
        result.resources = obs.usage
        self._attach_profile(result, obs)
        return result

    def _query_maximal_impl(
        self, query: Query, obs: Optional[QueryObservation]
    ) -> Result:
        tracer = current_tracer()
        with tracer.span("session.query_maximal"):
            with tracer.span("session.parse"):
                p = self.parse(query)
            with tracer.span("session.profile"):
                profile = self.planner.profile_wdpt(p)
            if obs is not None:
                obs.parsed(p)
            key = self._cache_key("query_maximal", p)
            if key is not None:
                answers = self.result_cache.get(key)
                if answers is not None:
                    self._note_cache(obs, "hit")
                    return Result(self, p, answers)
                self._note_cache(obs, "miss")
            start = time.perf_counter()
            with use_pool(self._intra_pool()):
                answers = evaluate_max(p, self.database, profile)
            self.planner.record_engine(
                "wdpt-topdown-max", time.perf_counter() - start
            )
            if key is not None:
                self.result_cache.put(key, answers)
        return Result(self, p, answers)

    def ask(self, query: Query, candidate: Mapping, method: str = "auto") -> bool:
        """``EVAL``: is ``candidate`` an answer?  (Theorem 6 DP, node
        checks routed through the planner.)"""
        obs = self._observe("ask", query)
        if obs is None:
            return self._ask_impl(query, candidate, method, None)
        with obs:
            decision = self._ask_impl(query, candidate, method, obs)
            obs.finish(obs.query, int(decision))
        return decision

    def _ask_impl(
        self,
        query: Query,
        candidate: Mapping,
        method: str,
        obs: Optional[QueryObservation],
    ) -> bool:
        with current_tracer().span("session.ask", method=method):
            p = self.parse(query)
            if obs is not None:
                obs.parsed(p)
            key = self._cache_key("ask", p, extra=(method, candidate))
            if key is not None:
                decision = self.result_cache.get(key)
                if decision is not None:
                    self._note_cache(obs, "hit")
                    return decision
                self._note_cache(obs, "miss")
            with use_pool(self._intra_pool()):
                decision = eval_tractable(
                    p, self.database, candidate,
                    method=method, planner=self.planner,
                )
            if key is not None:
                self.result_cache.put(key, decision)
            return decision

    def is_partial(self, query: Query, candidate: Mapping, method: str = "auto") -> bool:
        """``PARTIAL-EVAL``: does some answer extend ``candidate``?
        (Theorem 8, subtree CQ routed through the planner.)"""
        with current_tracer().span("session.is_partial", method=method):
            return partial_eval(
                self.parse(query), self.database, candidate,
                method=method, planner=self.planner,
            )

    def is_maximal(self, query: Query, candidate: Mapping, method: str = "auto") -> bool:
        """``MAX-EVAL``: is ``candidate`` a ⊑-maximal answer?  (Theorem 9.)"""
        with current_tracer().span("session.is_maximal", method=method):
            return max_eval(
                self.parse(query), self.database, candidate,
                method=method, planner=self.planner,
            )

    def explain(self, query: Query) -> WDPTProfile:
        """EXPLAIN profile without evaluating — served from the planner's
        EXPLAIN cache (repeated calls are hits, visible in :meth:`stats`)."""
        return self.planner.explain_wdpt(self.parse(query))

    def analyze(
        self,
        query: Query,
        candidate: Optional[Mapping] = None,
        maximal: bool = False,
    ):
        """EXPLAIN ANALYZE: evaluate under a fresh tracer and join the
        static profile with the measured per-node execution trace.

        * default — the top-down evaluator (``p(D)``), per-node candidate
          and extension counts;
        * ``candidate=h`` — the Theorem 6 DP for ``h ∈ p(D)``, whose
          per-node CQ checks route through the planner (Yannakakis on
          acyclic node labels), per-node interface-candidate and
          satisfiability-check counts;
        * ``maximal=True`` — the ``p_m(D)`` semantics.

        The result cache is bypassed for the analyzed call (on this
        thread only): EXPLAIN ANALYZE always measures a real execution,
        never a cache hit with nothing to report.

        Returns an :class:`repro.analyze.AnalyzeReport`; ``print(report)``
        renders the tree-shaped text form.
        """
        from .analyze import build_report

        p = self.parse(query)
        profile = self.planner.explain_wdpt(p)
        tracer = Tracer()
        n_answers: Optional[int] = None
        self._cache_bypass.active = True
        try:
            with tracing(tracer):
                if candidate is not None:
                    start = time.perf_counter()
                    self.ask(p, candidate, method="auto")
                    self.planner.record_engine(
                        "wdpt-dp", time.perf_counter() - start
                    )
                    mode = "ask"
                elif maximal:
                    n_answers = len(self.query_maximal(p).answers)
                    mode = "query_maximal"
                else:
                    n_answers = len(self.query(p).answers)
                    mode = "query"
        finally:
            self._cache_bypass.active = False
        return build_report(
            p, profile, tracer, self.planner, n_answers=n_answers, mode=mode,
            db=self.database,
        )

    def stats(self) -> Dict[str, object]:
        """Planner instrumentation (cache hit rates, per-engine selection
        counts, analysis vs. engine time) plus the result-cache state."""
        out = self.planner.stats()
        out["result_cache"] = (
            self.result_cache.stats() if self.result_cache is not None else None
        )
        out["gc"] = gc_summary(self.planner.metrics)
        return out

    def reset_stats(self) -> None:
        """Zero the instrumentation counters while keeping the warmed
        planner caches (parsed queries, structural profiles, EXPLAINs)
        and cached results, so steady-state measurement windows start
        from a warm cache."""
        self.planner.reset_counters()
        if self.result_cache is not None:
            self.result_cache.reset_counters()

    # ------------------------------------------------------------------
    # Data management
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.database)

    def add(self, fact: Atom) -> bool:
        """Insert a fact (answers of previous Results are snapshots;
        the data version moves, so cached results are not reused)."""
        return self.database.add(fact)

    def remove(self, fact: Atom) -> None:
        """Delete a fact (:exc:`KeyError` when absent); like :meth:`add`,
        this bumps the data version and so invalidates cached results."""
        self.database.remove(fact)

    def add_triples(self, triples: Iterable) -> int:
        """Insert RDF triples into the ``triple/3`` relation."""
        from .rdf.graph import TRIPLE_RELATION

        return self.database.update(
            Atom(TRIPLE_RELATION, t) for t in triples
        )

    def __repr__(self) -> str:
        return "Session(%d facts, %d cached queries)" % (
            len(self.database),
            len(self.planner.parses),
        )


def _parse_text(text: str) -> WDPT:
    """Surface SPARQL, falling back to the paper's algebraic notation."""
    try:
        return parse_sparql(text)
    except ParseError:
        try:
            return parse_query(text)
        except ParseError as exc:
            raise ParseError(
                "query parses neither as surface SPARQL nor as the "
                "algebraic notation: %s" % exc
            ) from None
