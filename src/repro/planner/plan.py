"""Query plans: the routing decision, its paper justification, and the
precomputed structures the chosen engine consumes.

A :class:`QueryPlan` is cheap — all heavy lifting lives in the memoized
:class:`~repro.planner.profile.StructuralProfile` it references — and
explicit: it names the engine, cites the theorem licensing it, and exposes
``describe()`` for EXPLAIN-style output.
"""

from __future__ import annotations

from typing import Optional

from .profile import StructuralProfile

#: Engine identifiers (also used as keys in planner statistics).
ENGINE_YANNAKAKIS = "yannakakis"
ENGINE_TREEWIDTH = "treewidth"
ENGINE_HYPERTREEWIDTH = "hypertreewidth"
ENGINE_NAIVE = "naive"


class QueryPlan:
    """The planner's routing decision for one CQ shape.

    Attributes
    ----------
    fingerprint:
        The structural fingerprint the plan is cached under.
    engine:
        One of the ``ENGINE_*`` identifiers.
    theorem:
        The paper result justifying the choice.
    profile:
        The memoized structural analysis (join tree / decomposition) the
        engine consumes — shared with every other plan for this shape.
    kernel:
        For Yannakakis plans, the resolved relational kernel (``sql`` /
        ``columnar`` / ``legacy``, see :mod:`repro.relalg.config`) the
        run will use against the database the plan was built for;
        ``None`` for the other engines (they evaluate through their own
        decomposition machinery before reaching the kernels).
    estimate:
        The planner's :class:`~repro.telemetry.insight.CardinalityEstimate`
        for this atom set against the database the plan was built for
        (``None`` when no database was given) — relation sizes,
        independence-assumption output estimate, and the AGM fractional
        cover bound where one is available.  Memoized by the planner per
        ``(atom set, backend_id, data_version)``, so stamping it here is
        a cache lookup, not a recount.
    """

    __slots__ = ("fingerprint", "engine", "theorem", "profile", "kernel", "estimate")

    def __init__(
        self,
        fingerprint: str,
        engine: str,
        theorem: str,
        profile: StructuralProfile,
        kernel: Optional[str] = None,
        estimate: Optional[object] = None,
    ):
        self.fingerprint = fingerprint
        self.engine = engine
        self.theorem = theorem
        self.profile = profile
        self.kernel = kernel
        self.estimate = estimate

    def describe(self) -> str:
        """One-line EXPLAIN: engine plus justification."""
        base = "%s — %s" % (self.engine, self.theorem)
        if self.kernel is not None:
            base += " [kernel=%s]" % self.kernel
        if self.estimate is not None:
            base += " [est≈%.4g rows, %s]" % (
                self.estimate.estimated_rows,
                self.estimate.method,
            )
        return base

    def width_note(self) -> Optional[str]:
        """A short note on the width parameters behind the decision."""
        if self.engine == ENGINE_YANNAKAKIS:
            return "acyclic (join tree of %d atoms)" % len(self.profile.sorted_atoms)
        if self.engine == ENGINE_TREEWIDTH:
            return "tw ≤ %d" % self.profile.treewidth_upper
        return None

    def __repr__(self) -> str:
        return "QueryPlan(%s)" % self.describe()
