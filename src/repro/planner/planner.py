"""The central query planner: memoized analysis + plan-aware engine routing.

One :class:`Planner` owns

* a bounded LRU :class:`~repro.planner.cache.PlanCache` of
  :class:`~repro.planner.profile.StructuralProfile` /
  :class:`~repro.planner.profile.TreeProfile` objects keyed by structural
  fingerprint (object identity and atom order are irrelevant);
* a parse cache (query text → WDPT) for the session layer, and an
  EXPLAIN cache (fingerprint → rendered profile) so repeated EXPLAINs
  are hits;
* instrumentation: cache hits/misses/evictions plus a
  :class:`~repro.telemetry.metrics.MetricsRegistry` holding the
  per-engine selection counters, per-call engine-time histograms, and
  cumulative analysis/engine time (formerly ad-hoc attributes); spans are
  emitted through :func:`repro.telemetry.tracer.current_tracer` whenever
  tracing is enabled.

Routing follows the paper:

* acyclic CQ → Yannakakis (Theorem 3 with ``k = 1``, ``HW(1) = AC``);
* treewidth bound ≤ ``tw_cutoff`` → bounded-treewidth engine (Theorem 2);
* otherwise → backtracking (no structural guarantee; EVAL for CQs is
  NP-complete in general).

The module-level :func:`get_default_planner` provides a process-wide
planner so free functions (``cqalgs.dispatch.evaluate``, ``wdpt.classes``,
``wdpt.explain``) share analyses without explicit wiring; a
:class:`~repro.engine.Session` owns a private planner instead.

One planner may serve many threads at once (:mod:`repro.parallel`'s
thread executor shares the session's planner across its workers): the
caches lock their LRU mutation, the metrics registry locks its series,
and :meth:`Planner.stats` aggregates from point-in-time snapshots, so
concurrent queries neither corrupt state nor perturb each other's
results.
"""

from __future__ import annotations

import time
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping as TMapping,
    Optional,
    TYPE_CHECKING,
)

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..core.terms import Term, Variable
from ..cqalgs.naive import evaluate_naive, satisfiable
from ..cqalgs.structured import (
    evaluate_bounded_hypertreewidth,
    evaluate_bounded_treewidth,
)
from ..cqalgs.yannakakis import evaluate_with_join_tree, satisfiable_with_join_tree
from ..hypergraphs.treedecomp import TreeDecomposition
from ..relalg.config import default_kernel
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.tracer import current_tracer
from ..wdpt.wdpt import WDPT
from .cache import PlanCache
from .plan import (
    ENGINE_NAIVE,
    ENGINE_TREEWIDTH,
    ENGINE_YANNAKAKIS,
    QueryPlan,
)
from .profile import StructuralProfile, TreeProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry.insight import CardinalityEstimate, QueryStatsStore
    from ..wdpt.explain import WDPTProfile

#: Treewidth (heuristic upper bound) below which the TD engine is preferred.
DEFAULT_TW_CUTOFF = 3


class Planner:
    """Memoized structural analysis plus plan-aware engine routing."""

    def __init__(
        self,
        profile_cache_size: int = 256,
        parse_cache_size: int = 256,
        tw_cutoff: int = DEFAULT_TW_CUTOFF,
        metrics: Optional[MetricsRegistry] = None,
        stats_store: Optional["QueryStatsStore"] = None,
    ):
        self.profiles = PlanCache(profile_cache_size)
        self.parses = PlanCache(parse_cache_size)
        self.explains = PlanCache(profile_cache_size)
        self.estimates = PlanCache(profile_cache_size)
        self.tw_cutoff = tw_cutoff
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Optional :class:`~repro.telemetry.insight.QueryStatsStore`:
        #: when present (and the kernel mode is ``auto``), Yannakakis
        #: plans prefer the kernel that historically won for the query's
        #: fingerprint over the static default.
        self.stats_store = stats_store

    # The former ad-hoc counter attributes, now views over the registry
    # (kept as properties so ``planner.engine_seconds``-style consumers
    # keep working).
    @property
    def engine_selections(self) -> Dict[str, int]:
        return {
            engine: int(count)
            for engine, count in self.metrics.labeled_values(
                "planner.engine.selected", "engine"
            ).items()
            if count  # instruments survive reset_counters() at zero
        }

    @property
    def analysis_seconds(self) -> float:
        return self.metrics.counter("planner.analysis_seconds").value

    @property
    def engine_seconds(self) -> float:
        return self.metrics.counter("planner.engine_seconds").value

    @property
    def plans_built(self) -> int:
        return int(self.metrics.counter("planner.plans_built").value)

    # ------------------------------------------------------------------
    # Profiles (memoized by structural fingerprint)
    # ------------------------------------------------------------------
    def profile_cq(self, query: ConjunctiveQuery) -> StructuralProfile:
        """The memoized structural profile of ``query``."""
        key = query.structural_fingerprint()
        profile = self.profiles.get(key)
        if profile is None:
            with current_tracer().span("planner.profile", kind="cq"):
                profile = StructuralProfile(
                    sorted(query.atoms),
                    free_variables=query.free_variables,
                    on_analysis=self._on_analysis,
                )
            self.profiles.put(key, profile)
        return profile

    def profile_wdpt(self, p: WDPT) -> TreeProfile:
        """The memoized structural profile of a pattern tree — one shared
        analysis for classes, EXPLAIN, and the Theorem 6/8/9 algorithms,
        including the nodes whose subtrees :mod:`repro.parallel` may
        evaluate concurrently (``profile.parallel_safe_nodes``).

        >>> from repro.core.atoms import atom
        >>> from repro.wdpt.wdpt import wdpt_from_nested
        >>> p = wdpt_from_nested(
        ...     ([atom("R", "?x")],
        ...      [([atom("S", "?x", "?y")], []),
        ...       ([atom("T", "?x", "?z")], [])]),
        ...     free_variables=["?x", "?y", "?z"])
        >>> profile = Planner().profile_wdpt(p)
        >>> sorted(profile.parallel_safe_nodes)  # the root has two children
        [0]
        """
        key = p.structural_fingerprint()
        profile = self.profiles.get(key)
        if profile is None:
            with current_tracer().span("planner.profile", kind="wdpt"):
                profile = TreeProfile(p, on_analysis=self._on_analysis)
            self.profiles.put(key, profile)
        return profile

    def explain_wdpt(self, p: WDPT) -> "WDPTProfile":
        """The memoized EXPLAIN profile of ``p`` (fingerprint-keyed, so
        repeated EXPLAINs — ``Session.explain``, ``Result.profile`` — are
        cache hits, visible in :meth:`stats`)."""
        key = p.structural_fingerprint()
        profile = self.explains.get(key)
        if profile is None:
            from ..wdpt.explain import WDPTProfile

            with current_tracer().span("planner.explain"):
                profile = self.explains.put(key, WDPTProfile(p, planner=self))
        return profile

    def _on_analysis(self, seconds: float) -> None:
        self.metrics.counter("planner.analysis_seconds").inc(seconds)

    # ------------------------------------------------------------------
    # Planning and execution
    # ------------------------------------------------------------------
    def plan_cq(self, query: ConjunctiveQuery, db: Optional[Database] = None) -> QueryPlan:
        """The plan for ``query``: engine + justification + structures.

        ``db`` (optional) lets the plan resolve the relational kernel a
        Yannakakis run would use against that database (SQL pushdown is
        backend-dependent)."""
        profile = self.profile_cq(query)
        return self.plan_for_profile(query.structural_fingerprint(), profile, db)

    def plan_for_profile(
        self,
        fingerprint: str,
        profile: StructuralProfile,
        db: Optional[Database] = None,
    ) -> QueryPlan:
        """The routing decision for an already-profiled atom set."""
        self.metrics.counter("planner.plans_built").inc()
        estimate = self.estimate_for_profile(profile, db)
        if profile.is_acyclic:
            return QueryPlan(
                fingerprint,
                ENGINE_YANNAKAKIS,
                "Theorem 3, k=1 (HW(1) = AC): Yannakakis over the memoized join tree",
                profile,
                kernel=self._preferred_kernel(fingerprint, db),
                estimate=estimate,
            )
        if profile.treewidth_upper <= self.tw_cutoff:
            return QueryPlan(
                fingerprint,
                ENGINE_TREEWIDTH,
                "Theorem 2: TW(%d) bounded-treewidth engine over the memoized decomposition"
                % profile.treewidth_upper,
                profile,
                estimate=estimate,
            )
        return QueryPlan(
            fingerprint,
            ENGINE_NAIVE,
            "no structural bound (Theorem 1 regime): backtracking search",
            profile,
            estimate=estimate,
        )

    def estimate_for_profile(
        self, profile: StructuralProfile, db: Optional[Database] = None
    ) -> Optional["CardinalityEstimate"]:
        """The memoized cardinality estimate for ``profile`` over ``db``.

        Keyed by ``(atom set, backend_id, data_version)``: relation
        counts are taken at most once per query shape per database epoch,
        so the hot planning paths (one ``plan_for_profile`` per candidate
        mapping in the Theorem 8/9 inner loop) pay one cache lookup."""
        if db is None:
            return None
        key = (profile.sorted_atoms, db.backend_id, db.data_version)
        estimate = self.estimates.get(key)
        if estimate is None:
            from ..telemetry.insight import estimate_profile

            with current_tracer().span(
                "planner.estimate", atoms=len(profile.sorted_atoms)
            ):
                estimate = estimate_profile(profile, db)
            self.estimates.put(key, estimate)
        return estimate

    def _preferred_kernel(self, fingerprint: str, db: Optional[Database]) -> str:
        """The kernel a Yannakakis plan should request: the stats store's
        historical winner for this fingerprint when one is seasoned (and
        the mode is ``auto``), else the static default."""
        fallback = default_kernel(db)
        if self.stats_store is None or not fingerprint:
            return fallback
        from ..relalg.config import MODE_AUTO, kernel_mode

        if kernel_mode() != MODE_AUTO:
            return fallback
        preferred = self.stats_store.best_kernel(fingerprint[:16])
        if preferred is None:
            return fallback
        self.metrics.counter(
            "planner.kernel.history_preferred", {"kernel": preferred}
        ).inc()
        return preferred

    def evaluate_cq(self, query: ConjunctiveQuery, db: Database) -> FrozenSet:
        """``q(D)`` through the plan-aware router (the ``auto`` method)."""
        plan = self.plan_cq(query, db)
        if plan.kernel is not None:
            self.record_kernel(plan.kernel)
        start = time.perf_counter()
        try:
            with current_tracer().span("planner.evaluate_cq", engine=plan.engine):
                if plan.engine == ENGINE_YANNAKAKIS:
                    return evaluate_with_join_tree(
                        query,
                        db,
                        plan.profile.sorted_atoms,
                        plan.profile.join_tree,
                        kernel=plan.kernel,
                    )
                if plan.engine == ENGINE_TREEWIDTH:
                    return evaluate_bounded_treewidth(
                        query, db, decomposition=plan.profile.tree_decomposition
                    )
                return evaluate_naive(query, db)
        finally:
            self.record_engine(plan.engine, time.perf_counter() - start)

    def record_engine(self, engine: str, seconds: float) -> None:
        """Record one engine run: selection counter, cumulative time, and
        a per-call latency histogram (p50/p95/p99/max in :meth:`stats`).

        Both instruments are labeled families (``{"engine": engine}``), so
        the Prometheus exposition renders them as one metric with an
        ``engine`` label rather than one metric per engine."""
        labels = {"engine": engine}
        self.metrics.counter("planner.engine.selected", labels).inc()
        self.metrics.counter("planner.engine_seconds").inc(seconds)
        self.metrics.histogram("planner.engine_latency", labels=labels).observe(seconds)

    def record_kernel(self, kernel: str) -> None:
        """Record which relational kernel (``sql``/``columnar``/``legacy``)
        a Yannakakis run resolved to — a labeled counter family, mirroring
        :meth:`record_engine`."""
        self.metrics.counter("planner.kernel.selected", {"kernel": kernel}).inc()

    @property
    def kernel_selections(self) -> Dict[str, int]:
        return {
            kernel: int(count)
            for kernel, count in self.metrics.labeled_values(
                "planner.kernel.selected", "kernel"
            ).items()
            if count
        }

    #: Backwards-compatible alias (pre-telemetry callers).
    _record_engine = record_engine

    # ------------------------------------------------------------------
    # Substituted satisfiability (the Theorem 6/8/9 inner loop)
    # ------------------------------------------------------------------
    def satisfiable_substituted(
        self,
        profile: StructuralProfile,
        substitution: TMapping[Variable, Term],
        db: Database,
        method: str = "auto",
    ) -> bool:
        """Is the Boolean CQ ``σ(atoms)`` satisfiable over ``db``, where
        ``atoms`` is the (unsubstituted) atom set profiled by ``profile``?

        Routing uses the *unsubstituted* profile — sound because
        substitution only removes hypergraph vertices, and acyclicity /
        treewidth are monotone under vertex removal — so one analysis
        serves every candidate mapping.
        """
        atoms: List[Atom] = [a.substitute(substitution) for a in profile.sorted_atoms]
        if method == "naive":
            return satisfiable(atoms, db)
        if method not in ("auto",):
            # Explicit engine: build the substituted Boolean CQ and run it.
            q = ConjunctiveQuery((), atoms)
            start = time.perf_counter()
            try:
                with current_tracer().span("planner.satisfiable", engine=method):
                    if method == "yannakakis":
                        from ..cqalgs.yannakakis import evaluate_acyclic

                        return bool(evaluate_acyclic(q, db))
                    if method == "treewidth":
                        return bool(evaluate_bounded_treewidth(q, db))
                    if method == "hypertreewidth":
                        return bool(evaluate_bounded_hypertreewidth(q, db))
            finally:
                self.record_engine(method, time.perf_counter() - start)
            raise ValueError("unknown method %r" % (method,))
        plan = self.plan_for_profile("", profile, db)
        if plan.kernel is not None:
            self.record_kernel(plan.kernel)
        start = time.perf_counter()
        try:
            with current_tracer().span("planner.satisfiable", engine=plan.engine):
                if plan.engine == ENGINE_YANNAKAKIS:
                    # Boolean fast path: the bottom-up semi-join sweep
                    # alone decides satisfiability, with early exit.
                    return satisfiable_with_join_tree(
                        atoms, profile.join_tree, db
                    )
                if plan.engine == ENGINE_TREEWIDTH:
                    q = ConjunctiveQuery((), atoms)
                    td = _restrict_decomposition(
                        profile.tree_decomposition,
                        frozenset(v for a in atoms for v in a.variables()),
                    )
                    return bool(evaluate_bounded_treewidth(q, db, decomposition=td))
                return satisfiable(atoms, db)
        finally:
            self.record_engine(plan.engine, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Parse cache (session layer)
    # ------------------------------------------------------------------
    def cached_parse(self, text: str, parse: Callable[[str], WDPT]) -> WDPT:
        """Parse ``text`` through the LRU parse cache."""
        cached = self.parses.get(text)
        if cached is not None:
            return cached
        return self.parses.put(text, parse(text))

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def cache_hit_rate(self) -> float:
        """Hit rate of the structural-profile cache."""
        return self.profiles.hit_rate()

    def stats(self) -> Dict[str, object]:
        """Counters for ``session.stats()`` and the benchmark tables."""
        subtree_hits = subtree_misses = 0
        for profile in self.profiles.values_snapshot():
            if isinstance(profile, TreeProfile):
                subtree_hits += profile.subtree_hits
                subtree_misses += profile.subtree_misses
        return {
            "plan_cache": self.profiles.stats(),
            "parse_cache": self.parses.stats(),
            "explain_cache": self.explains.stats(),
            "estimate_cache": self.estimates.stats(),
            "subtree_profiles": {"hits": subtree_hits, "misses": subtree_misses},
            "engine_selections": dict(self.engine_selections),
            "kernel_selections": dict(self.kernel_selections),
            "plans_built": self.plans_built,
            "analysis_seconds": self.analysis_seconds,
            "engine_seconds": self.engine_seconds,
            "engine_latency": {
                engine: histogram.snapshot()
                for engine, histogram in self.metrics.labeled_histograms(
                    "planner.engine_latency", "engine"
                ).items()
                if engine in self.engine_selections
            },
        }

    def reset_counters(self) -> None:
        """Zero all counters (cached analyses are kept)."""
        self.profiles.hits = self.profiles.misses = self.profiles.evictions = 0
        self.parses.hits = self.parses.misses = self.parses.evictions = 0
        self.explains.hits = self.explains.misses = self.explains.evictions = 0
        self.estimates.hits = self.estimates.misses = self.estimates.evictions = 0
        self.metrics.reset()

    def __repr__(self) -> str:
        return "Planner(%d cached profiles, hit rate %.0f%%)" % (
            len(self.profiles),
            100 * self.cache_hit_rate(),
        )


def _restrict_decomposition(
    td: TreeDecomposition, keep: FrozenSet
) -> TreeDecomposition:
    """The decomposition with every bag intersected with ``keep``.

    Valid for the vertex-removed (substituted) hypergraph: per-vertex
    connectedness is unchanged for surviving vertices, and every surviving
    atom's variables sit inside the intersection of its original bag with
    ``keep``.
    """
    return TreeDecomposition([bag & keep for bag in td.bags], td.tree_edges)


# ---------------------------------------------------------------------------
# Process-wide default planner
# ---------------------------------------------------------------------------
_default_planner: Optional[Planner] = None


def get_default_planner() -> Planner:
    """The process-wide planner used by free functions when no explicit
    planner is passed."""
    global _default_planner
    if _default_planner is None:
        _default_planner = Planner()
    return _default_planner


def set_default_planner(planner: Optional[Planner]) -> None:
    """Install (or, with ``None``, reset) the process-wide planner."""
    global _default_planner
    _default_planner = planner
