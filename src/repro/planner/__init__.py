"""Central query planning: memoized structural analysis, bounded plan
caching, and plan-aware engine routing.

The paper's tractability landscape (Theorems 2/3 for CQs; 6–9 and 16 for
WDPTs) is decided entirely by structural parameters of the query.  This
package computes those parameters once per query *shape* (keyed by a
stable structural fingerprint), caches them in a bounded LRU, and routes
every evaluation problem to the cheapest engine the structure licenses —
with counters (cache hits/misses, analysis vs engine time, per-engine
selections) for the session API and the benchmark harness.
"""

from .cache import PlanCache
from .plan import (
    ENGINE_HYPERTREEWIDTH,
    ENGINE_NAIVE,
    ENGINE_TREEWIDTH,
    ENGINE_YANNAKAKIS,
    QueryPlan,
)
from .planner import (
    DEFAULT_TW_CUTOFF,
    Planner,
    get_default_planner,
    set_default_planner,
)
from .profile import StructuralProfile, TreeProfile

__all__ = [
    "PlanCache",
    "QueryPlan",
    "ENGINE_HYPERTREEWIDTH",
    "ENGINE_NAIVE",
    "ENGINE_TREEWIDTH",
    "ENGINE_YANNAKAKIS",
    "DEFAULT_TW_CUTOFF",
    "Planner",
    "get_default_planner",
    "set_default_planner",
    "StructuralProfile",
    "TreeProfile",
]
