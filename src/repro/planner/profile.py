"""Memoized structural analysis of CQs and WDPTs.

The paper's tractability results (Theorems 2/3, 6–9, 16) route on
*structural* parameters — acyclicity, (hyper)treewidth, interface width,
class membership — that are properties of the query alone, not of the
database.  :class:`StructuralProfile` computes each of them lazily, exactly
once, and keeps the witnesses (join tree, tree decomposition) so the
engines can consume them without recomputation.  :class:`TreeProfile` does
the same for a WDPT: per-node profiles, the global profile, and *derived*
profiles for rooted subtrees, which the Theorem 8/9 algorithms request
repeatedly (one per candidate mapping) and which are therefore memoized and
seeded with the bounds already known for the full tree.

Soundness of reuse under substitution: the Theorem 8/9 algorithms evaluate
*substituted* subtree CQs ``q̂_{T'}`` (a candidate mapping ``h`` replaces
some variables by constants).  Substitution only removes vertices from the
query hypergraph, and both α-acyclicity and treewidth are monotone under
vertex removal (a join tree / decomposition restricted to the remaining
vertices stays valid).  Routing a substituted CQ on the profile of its
*unsubstituted* shape is therefore sound, and the unsubstituted shape is
shared by every candidate mapping — which is exactly what makes the
memoization pay off.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.atoms import Atom, variables_of
from ..core.terms import Variable
from ..exceptions import BudgetExceededError
from ..hypergraphs.beta import beta_hypertreewidth_at_most
from ..hypergraphs.gyo import join_tree_of_atoms
from ..hypergraphs.hypergraph import Hypergraph
from ..hypergraphs.hypertree import hypertree_decomposition, hypertreewidth_at_most, hypertreewidth_exact
from ..hypergraphs.treedecomp import TreeDecomposition
from ..hypergraphs.treewidth import (
    tree_decomposition,
    treewidth_exact,
    treewidth_upper_bound,
)
from ..wdpt.wdpt import WDPT

#: Sentinel distinguishing "not yet computed" from a computed ``None``.
_UNSET = object()

AnalysisHook = Optional[Callable[[float], None]]


class StructuralProfile:
    """Lazily computed, memoized structural analysis of one atom set.

    Every accessor computes its answer at most once; the time spent is
    accumulated in :attr:`analysis_seconds` and reported through the
    optional ``on_analysis`` hook (the planner aggregates these).
    """

    __slots__ = (
        "sorted_atoms",
        "free_variables",
        "analysis_seconds",
        "_on_analysis",
        "_inherited_tw_upper",
        "_hypergraph",
        "_join_tree",
        "_tw_upper",
        "_tw_exact",
        "_hw_exact",
        "_tree_decomp",
        "_hypertree_decomp",
        "_tw_at_most",
        "_hw_at_most",
        "_beta_hw_at_most",
    )

    def __init__(
        self,
        atoms: Sequence[Atom],
        free_variables: Tuple[Variable, ...] = (),
        on_analysis: AnalysisHook = None,
        inherited_tw_upper: Optional[int] = None,
    ):
        self.sorted_atoms: Tuple[Atom, ...] = tuple(sorted(set(atoms)))
        self.free_variables = tuple(free_variables)
        self.analysis_seconds = 0.0
        self._on_analysis = on_analysis
        self._inherited_tw_upper = inherited_tw_upper
        self._hypergraph = _UNSET
        self._join_tree = _UNSET
        self._tw_upper = _UNSET
        self._tw_exact = _UNSET
        self._hw_exact = _UNSET
        self._tree_decomp = _UNSET
        self._hypertree_decomp = _UNSET
        self._tw_at_most: Dict[int, bool] = {}
        self._hw_at_most: Dict[int, bool] = {}
        self._beta_hw_at_most: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Timed lazy computation
    # ------------------------------------------------------------------
    def _timed(self, fn: Callable[[], object]) -> object:
        start = time.perf_counter()
        try:
            return fn()
        finally:
            elapsed = time.perf_counter() - start
            self.analysis_seconds += elapsed
            if self._on_analysis is not None:
                self._on_analysis(elapsed)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def hypergraph(self) -> Hypergraph:
        """The query hypergraph (variables as vertices, atoms as edges)."""
        if self._hypergraph is _UNSET:
            self._hypergraph = self._timed(
                lambda: Hypergraph(
                    (a.variables() for a in self.sorted_atoms),
                    vertices=variables_of(self.sorted_atoms),
                )
            )
        return self._hypergraph  # type: ignore[return-value]

    @property
    def join_tree(self) -> Optional[List[Tuple[int, int]]]:
        """A join tree over :attr:`sorted_atoms` indices, or ``None`` when
        the query is cyclic.  Computed once; consumed directly by the
        Yannakakis engine (no rebuild)."""
        if self._join_tree is _UNSET:
            self._join_tree = self._timed(lambda: join_tree_of_atoms(self.sorted_atoms))
        return self._join_tree  # type: ignore[return-value]

    @property
    def is_acyclic(self) -> bool:
        """α-acyclicity (``HW(1) = AC``, Section 3.1)."""
        return self.join_tree is not None

    @property
    def treewidth_upper(self) -> int:
        """The cheap heuristic upper bound on treewidth, capped by any bound
        inherited from a superquery (treewidth is monotone under subqueries)."""
        if self._tw_upper is _UNSET:
            bound = self._timed(lambda: treewidth_upper_bound(self.hypergraph))
            if self._inherited_tw_upper is not None:
                bound = min(bound, self._inherited_tw_upper)  # type: ignore[call-overload]
            self._tw_upper = bound
        return self._tw_upper  # type: ignore[return-value]

    @property
    def treewidth(self) -> Optional[int]:
        """Exact treewidth, or ``None`` when over the exact-solver budget."""
        if self._tw_exact is _UNSET:
            self._tw_exact = self._timed(lambda: _safe(lambda: treewidth_exact(self.hypergraph)))
        return self._tw_exact  # type: ignore[return-value]

    @property
    def hypertreewidth(self) -> Optional[int]:
        """Exact generalized hypertreewidth, or ``None`` over budget."""
        if self._hw_exact is _UNSET:
            self._hw_exact = self._timed(
                lambda: _safe(lambda: hypertreewidth_exact(self.hypergraph))
            )
        return self._hw_exact  # type: ignore[return-value]

    @property
    def tree_decomposition(self) -> TreeDecomposition:
        """A tree decomposition witness (exact width within budget),
        consumed by the bounded-treewidth engine."""
        if self._tree_decomp is _UNSET:
            self._tree_decomp = self._timed(lambda: tree_decomposition(self.hypergraph))
        return self._tree_decomp  # type: ignore[return-value]

    @property
    def hypertree_decomposition(self) -> TreeDecomposition:
        """A generalized hypertree decomposition witness."""
        if self._hypertree_decomp is _UNSET:
            self._hypertree_decomp = self._timed(
                lambda: hypertree_decomposition(self.hypergraph)
            )
        return self._hypertree_decomp  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Class membership (memoized per k)
    # ------------------------------------------------------------------
    def in_tw(self, k: int) -> bool:
        """``TW(k)`` membership (Section 3.1), with inherited fast path."""
        cached = self._tw_at_most.get(k)
        if cached is None:
            if self._inherited_tw_upper is not None and self._inherited_tw_upper <= k:
                cached = True
            else:
                from ..hypergraphs.treewidth import treewidth_at_most

                cached = self._timed(lambda: treewidth_at_most(self.hypergraph, k))
            self._tw_at_most[k] = cached  # type: ignore[assignment]
        return cached  # type: ignore[return-value]

    def in_hw(self, k: int) -> bool:
        """``HW(k)`` membership."""
        cached = self._hw_at_most.get(k)
        if cached is None:
            cached = self._timed(lambda: hypertreewidth_at_most(self.hypergraph, k))
            self._hw_at_most[k] = cached  # type: ignore[assignment]
        return cached  # type: ignore[return-value]

    def in_beta_hw(self, k: int) -> bool:
        """``HW'(k)`` (β-hypertreewidth) membership — subquery-closed."""
        cached = self._beta_hw_at_most.get(k)
        if cached is None:
            cached = self._timed(lambda: beta_hypertreewidth_at_most(self.hypergraph, k))
            self._beta_hw_at_most[k] = cached  # type: ignore[assignment]
        return cached  # type: ignore[return-value]

    def __repr__(self) -> str:
        acyclic = "?" if self._join_tree is _UNSET else str(self.is_acyclic)
        return "StructuralProfile(%d atoms, acyclic=%s)" % (len(self.sorted_atoms), acyclic)


class TreeProfile:
    """One shared structural analysis for a whole WDPT.

    Holds per-node profiles, the global (full-tree) profile, interface
    widths, and derived rooted-subtree profiles.  Subtree profiles inherit
    the global treewidth bound (treewidth is subquery-monotone) so class
    checks on subtrees are usually free, and they are memoized by node set:
    the Theorem 8/9 algorithms request the same few subtrees once per
    candidate mapping, so across a workload almost every request is a hit.
    """

    __slots__ = (
        "wdpt",
        "fingerprint",
        "_on_analysis",
        "_node_profiles",
        "_subtree_profiles",
        "_global",
        "_interface_width",
        "_parallel_nodes",
        "subtree_hits",
        "subtree_misses",
    )

    def __init__(self, p: WDPT, on_analysis: AnalysisHook = None):
        self.wdpt = p
        self.fingerprint = p.structural_fingerprint()
        self._on_analysis = on_analysis
        self._node_profiles: List[Optional[StructuralProfile]] = [None] * len(p.tree)
        self._subtree_profiles: Dict[FrozenSet[int], StructuralProfile] = {}
        self._global: Optional[StructuralProfile] = None
        self._interface_width: Optional[int] = None
        self._parallel_nodes: Optional[FrozenSet[int]] = None
        self.subtree_hits = 0
        self.subtree_misses = 0

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def node_profile(self, node: int) -> StructuralProfile:
        """The profile of ``λ(node)`` as a Boolean CQ (Theorem 7's per-node
        checks route on this)."""
        profile = self._node_profiles[node]
        if profile is None:
            profile = StructuralProfile(
                sorted(self.wdpt.labels[node]), on_analysis=self._on_analysis
            )
            self._node_profiles[node] = profile
        return profile

    @property
    def global_profile(self) -> StructuralProfile:
        """The profile of ``q_T`` (all nodes) — the g-C(k) checks of
        Theorems 8/9 route on this."""
        if self._global is None:
            p = self.wdpt
            self._global = StructuralProfile(
                sorted(p.atoms_of(p.tree.nodes())),
                free_variables=p.free_variables,
                on_analysis=self._on_analysis,
            )
        return self._global

    def subtree_profile(self, nodes: FrozenSet[int]) -> StructuralProfile:
        """The profile of the rooted subtree ``nodes`` — derived, not
        rebuilt: memoized per node set and seeded with the global treewidth
        bound when it is already known."""
        key = frozenset(nodes)
        profile = self._subtree_profiles.get(key)
        if profile is not None:
            self.subtree_hits += 1
            return profile
        self.subtree_misses += 1
        if len(key) == len(self.wdpt.tree):
            profile = self.global_profile
        else:
            inherited = None
            g = self._global
            if g is not None and g._tw_upper is not _UNSET:
                inherited = g.treewidth_upper
            profile = StructuralProfile(
                sorted(self.wdpt.atoms_of(key)),
                on_analysis=self._on_analysis,
                inherited_tw_upper=inherited,
            )
        self._subtree_profiles[key] = profile
        return profile

    # ------------------------------------------------------------------
    # Parallel-safe fan-out points (repro.parallel)
    # ------------------------------------------------------------------
    @property
    def parallel_safe_nodes(self) -> FrozenSet[int]:
        """Nodes whose child subtrees may be evaluated concurrently.

        Well-designedness makes a node's variables a separator between its
        child subtrees (the same property the top-down evaluator's product
        decomposition rests on), so sibling subtrees are *always*
        independent given the parent's mapping — a node is marked as a
        parallel fan-out point exactly when it has at least two children,
        i.e. when there is more than one independent unit of work to
        dispatch.  The intra-query dispatch sites in
        :mod:`repro.wdpt.evaluation` and :mod:`repro.wdpt.eval_tractable`
        only fan out at marked nodes.
        """
        if self._parallel_nodes is None:
            tree = self.wdpt.tree
            self._parallel_nodes = frozenset(
                n for n in tree.nodes() if len(tree.children(n)) >= 2
            )
        return self._parallel_nodes

    # ------------------------------------------------------------------
    # Interface widths (Section 3.2)
    # ------------------------------------------------------------------
    @property
    def interface_width(self) -> int:
        """The smallest ``c`` with the tree in ``BI(c)``."""
        if self._interface_width is None:
            self._interface_width = max(self.node_interfaces(), default=0)
        return self._interface_width

    def node_interfaces(self) -> List[int]:
        """Per-node interface sizes ``|vars(t) ∩ ⋃_child vars(child)|``."""
        from ..wdpt.subtrees import interface_to_children

        return [
            len(interface_to_children(self.wdpt, n)) for n in self.wdpt.tree.nodes()
        ]

    # ------------------------------------------------------------------
    # Class memberships (Sections 3.2/3.3/5), shared across consumers
    # ------------------------------------------------------------------
    def locally_in_tw(self, k: int) -> bool:
        """``ℓ-TW(k)``: every node label in ``TW(k)``."""
        return all(
            self.node_profile(n).in_tw(k) for n in self.wdpt.tree.nodes()
        )

    def locally_in_hw(self, k: int) -> bool:
        """``ℓ-HW(k)``."""
        return all(
            self.node_profile(n).in_hw(k) for n in self.wdpt.tree.nodes()
        )

    def globally_in_tw(self, k: int) -> bool:
        """``g-TW(k)`` — collapses to the full tree (treewidth is
        subquery-monotone)."""
        return self.global_profile.in_tw(k)

    def globally_in_beta_hw(self, k: int) -> bool:
        """``g-HW'(k)`` — ``HW'`` is subquery-closed, so the full tree
        suffices."""
        return self.global_profile.in_beta_hw(k)

    def globally_in_hw(self, k: int) -> bool:
        """``g-HW(k)``: every rooted subtree in ``HW(k)``.  Fast paths via
        the full tree and β-width; otherwise rooted subtrees are enumerated
        against memoized subtree profiles."""
        if not self.global_profile.in_hw(k):
            return False  # T itself is a rooted subtree
        try:
            if self.global_profile.in_beta_hw(k):
                return True
        except Exception:  # budget exceeded on the fast path: fall through
            pass
        return all(
            self.subtree_profile(nodes).in_hw(k)
            for nodes in self.wdpt.tree.rooted_subtrees()
        )

    @property
    def analysis_seconds(self) -> float:
        """Total analysis time across all owned profiles."""
        total = sum(p.analysis_seconds for p in self._node_profiles if p is not None)
        total += sum(p.analysis_seconds for p in self._subtree_profiles.values())
        if self._global is not None and frozenset(self.wdpt.tree.nodes()) not in self._subtree_profiles:
            total += self._global.analysis_seconds
        return total

    def __repr__(self) -> str:
        return "TreeProfile(%d nodes, %d subtree profiles)" % (
            len(self.wdpt.tree),
            len(self._subtree_profiles),
        )


def _safe(fn: Callable[[], int]) -> Optional[int]:
    try:
        return fn()
    except BudgetExceededError:
        return None
