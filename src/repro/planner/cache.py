"""Bounded LRU cache for structural analyses and parsed queries.

The planner memoizes expensive per-query artefacts (join trees, width
bounds, decompositions) keyed by the query's *structural fingerprint*
(:meth:`repro.core.cq.ConjunctiveQuery.structural_fingerprint`), so two
structurally identical query objects share one analysis.  A production
session may see an unbounded stream of distinct queries, so the cache is
LRU-bounded and instrumented: hit/miss/eviction counters feed
``session.stats()`` and the benchmark tables.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class PlanCache:
    """A thread-safe, bounded LRU mapping with hit/miss/eviction counters.

    >>> c = PlanCache(maxsize=2)
    >>> for k, v in [("a", 1), ("b", 2), ("c", 3)]:   # 3rd put evicts "a"
    ...     _ = c.put(k, v)
    >>> c.get("a") is None
    True
    >>> c.get("c")
    3
    >>> c.evictions
    1
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data", "_lock")

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("cache size must be positive, got %d" % maxsize)
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (refreshed as most-recently-used), or ``None``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert (or refresh) ``key`` and return ``value``."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
            return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """The cached value without refreshing recency or counting a
        hit/miss — for introspection (``stats``) paths that must not
        perturb the LRU order."""
        with self._lock:
            return self._data.get(key)

    def values_snapshot(self) -> list:
        """A point-in-time copy of the cached values, taken under the
        lock — safe to iterate while pool workers keep inserting
        (``Planner.stats`` aggregates per-profile counters from it)."""
        with self._lock:
            return list(self._data.values())

    def items_snapshot(self) -> list:
        """A point-in-time ``(key, value)`` copy in LRU order (least
        recent first), taken under the lock — the ``/debug/plans``
        endpoint renders the cache contents from it."""
        with self._lock:
            return list(self._data.items())

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()

    def hit_rate(self) -> float:
        """``hits / (hits + misses)``, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
        }

    def __repr__(self) -> str:
        return "PlanCache(%d/%d, %d hits, %d misses)" % (
            len(self._data),
            self.maxsize,
            self.hits,
            self.misses,
        )
