"""Chandra–Merlin containment and equivalence of CQs.

``q₁ ⊆ q₂`` (for every database, ``q₁(D) ⊆ q₂(D)``) holds iff there is a
homomorphism from ``q₂`` to the canonical database of ``q₁`` that fixes the
free variables [7].  Under the paper's mapping-based answer semantics,
answers are keyed by variable *names*, so containment between queries with
different free-variable sets is simply false (their answers have different
domains — except in the degenerate direction where ``q₁`` never has
answers, which cannot happen: a CQ always answers on its own canonical
database).

Also provided: ``union_contained`` for unions of CQs (a UCQ is contained in
another iff every disjunct is contained in some disjunct of the other —
Sagiv–Yannakakis), needed by Section 6.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..core.cq import ConjunctiveQuery
from .homomorphism import has_query_homomorphism


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """``q₁ ⊆ q₂``.

    >>> from repro.core import atom, cq
    >>> path = cq(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])
    >>> edge = cq(["?x"], [atom("E", "?x", "?y")])
    >>> is_contained_in(path, edge)
    True
    >>> is_contained_in(edge, path)
    False
    """
    if frozenset(q1.free_variables) != frozenset(q2.free_variables):
        return False
    # Name clashes between existential variables of q1 and q2 are harmless:
    # the homomorphism's domain is q2's variables and its range is the
    # frozen canonical database of q1.
    fixed = {v: v for v in q1.free_variables}
    return has_query_homomorphism(q2.atoms, q1.atoms, fixed=fixed)


def are_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """``q₁ ≡ q₂``: containment in both directions."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def is_properly_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """``q₁ ⊂ q₂``: contained but not equivalent."""
    return is_contained_in(q1, q2) and not is_contained_in(q2, q1)


def union_contained(
    union1: Sequence[ConjunctiveQuery], union2: Sequence[ConjunctiveQuery]
) -> bool:
    """UCQ containment: every disjunct of ``union1`` is contained in some
    disjunct of ``union2`` (Sagiv–Yannakakis)."""
    return all(any(is_contained_in(q1, q2) for q2 in union2) for q1 in union1)


def union_equivalent(
    union1: Sequence[ConjunctiveQuery], union2: Sequence[ConjunctiveQuery]
) -> bool:
    """UCQ equivalence (both containments)."""
    return union_contained(union1, union2) and union_contained(union2, union1)


def reduce_union(queries: Iterable[ConjunctiveQuery]) -> List[ConjunctiveQuery]:
    """Remove disjuncts contained in another disjunct (the ``φ_cq^r``
    reduction used in the proof of Theorem 17).

    Keeps one representative per equivalence class; the result is a minimal
    equivalent union.
    """
    pool = list(queries)
    kept: List[ConjunctiveQuery] = []
    for i, q in enumerate(pool):
        dominated = False
        for j, other in enumerate(pool):
            if i == j:
                continue
            if is_contained_in(q, other):
                if not is_contained_in(other, q):
                    dominated = True
                    break
                # Equivalent disjuncts: keep only the first occurrence.
                if j < i:
                    dominated = True
                    break
        if not dominated:
            kept.append(q)
    return kept


