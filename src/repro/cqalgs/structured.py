"""Structure-exploiting CQ evaluation: bounded treewidth and hypertreewidth.

These engines realize Theorems 2 and 3 of the paper: CQs in ``TW(k)`` /
``HW(k)`` evaluate in polynomial time for fixed ``k``.  Both reduce the CQ
to an *acyclic* instance and finish with Yannakakis:

1. compute a (hyper)tree decomposition of the query hypergraph;
2. materialize one synthetic relation per decomposition node ("bag"):
   the join of the atoms assigned to / covering the bag, restricted to the
   bag's variables (cost ``|D|^{k+1}`` resp. ``|D|^k``);
3. replace the query by one synthetic atom per bag — acyclic by
   construction, with the decomposition tree as its join tree;
4. run Yannakakis.

Every original atom is assigned to some bag (guaranteed by decomposition
condition (2)), so the synthetic query is equivalent to the original.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..core.terms import Variable
from ..exceptions import ClassMembershipError
from ..hypergraphs.hypergraph import hypergraph_of_cq
from ..hypergraphs.hypertree import hypertree_decomposition
from ..hypergraphs.treedecomp import TreeDecomposition
from ..hypergraphs.treewidth import tree_decomposition
from .yannakakis import _join, _scan, evaluate_with_join_tree


def evaluate_bounded_treewidth(
    query: ConjunctiveQuery,
    db: Database,
    k: Optional[int] = None,
    decomposition: Optional[TreeDecomposition] = None,
) -> FrozenSet[Mapping]:
    """``q(D)`` via a tree decomposition (Theorem 2 engine).

    ``k`` (optional) asserts a width bound: a wider decomposition raises
    :class:`~repro.exceptions.ClassMembershipError`.
    """
    H = hypergraph_of_cq(query)
    td = decomposition if decomposition is not None else tree_decomposition(H)
    if k is not None and td.width() > k:
        raise ClassMembershipError(
            "query has treewidth %d > requested bound %d" % (td.width(), k)
        )
    return _evaluate_with_decomposition(query, db, td)


def evaluate_bounded_hypertreewidth(
    query: ConjunctiveQuery,
    db: Database,
    k: Optional[int] = None,
    decomposition: Optional[TreeDecomposition] = None,
) -> FrozenSet[Mapping]:
    """``q(D)`` via a generalized hypertree decomposition (Theorem 3 engine)."""
    H = hypergraph_of_cq(query)
    td = decomposition if decomposition is not None else hypertree_decomposition(H)
    if td.covers is None:
        raise ClassMembershipError("decomposition has no edge covers")
    if k is not None and td.hypertree_width() > k:
        raise ClassMembershipError(
            "query has hypertreewidth %d > requested bound %d"
            % (td.hypertree_width(), k)
        )
    return _evaluate_with_decomposition(query, db, td)


def _evaluate_with_decomposition(
    query: ConjunctiveQuery, db: Database, td: TreeDecomposition
) -> FrozenSet[Mapping]:
    atoms = sorted(query.atoms)

    # Ground atoms (no variables) are global filters.
    variable_atoms: List[Atom] = []
    for a in atoms:
        if a.variables():
            variable_atoms.append(a)
        elif not any(True for _ in db.match(a)):
            return frozenset()
    if not variable_atoms:
        # Purely ground query that passed all filters: the empty mapping.
        return frozenset([Mapping()]) if not query.free_variables else frozenset()

    assignment = _assign_atoms_to_bags(variable_atoms, td)

    # Materialize one relation per bag.  Each factor carries its schema
    # (the variables its mappings are total on) so the joins run on
    # structurally-known shared variables rather than inspecting rows.
    bag_relations: List[FrozenSet[Mapping]] = []
    bag_vars: List[Tuple[Variable, ...]] = []
    for i, bag in enumerate(td.bags):
        factors: List[Tuple[FrozenSet[Variable], FrozenSet[Mapping]]] = []
        covered: Set[Variable] = set()
        if td.covers is not None:
            for edge in td.covers[i]:
                witness = _atom_with_variables(variable_atoms, edge)
                factors.append((frozenset(edge), frozenset(_scan(witness, db))))
                covered |= set(edge)
        for a in assignment.get(i, ()):
            factors.append((a.variables(), frozenset(_scan(a, db))))
            covered |= set(a.variables())
        for v in sorted(bag - covered, key=repr):
            factors.append((frozenset([v]), _unary_domain(v, variable_atoms, db)))
            covered.add(v)
        relation: FrozenSet[Mapping] = frozenset([Mapping()])
        schema: Set[Variable] = set()
        for f_vars, f in factors:
            relation = _join(relation, f, tuple(sorted(schema & f_vars, key=repr)))
            schema |= f_vars
        relation = frozenset(m.restrict(bag) for m in relation)
        bag_relations.append(relation)
        bag_vars.append(tuple(sorted((v for v in bag), key=repr)))

    # Build the synthetic acyclic instance and query.
    synthetic_db = Database()
    synthetic_atoms: List[Atom] = []
    for i, (rel, vs) in enumerate(zip(bag_relations, bag_vars)):
        name = "__bag_%d" % i
        if not vs:
            # An empty bag constrains nothing; represent it as satisfied
            # (bags are never empty when the query has variables, except
            # padding nodes of degenerate decompositions).
            continue
        synthetic_atoms.append(Atom(name, vs))
        for m in rel:
            synthetic_db.add(Atom(name, tuple(m[v] for v in vs)))
        if not rel:
            return frozenset()
    if not synthetic_atoms:
        return frozenset([Mapping()]) if not query.free_variables else frozenset()

    synthetic_query = ConjunctiveQuery(query.free_variables, synthetic_atoms)
    links = _decomposition_join_tree(td, synthetic_atoms)
    return evaluate_with_join_tree(synthetic_query, db=synthetic_db, atoms=synthetic_atoms, links=links)


def _assign_atoms_to_bags(
    atoms: Sequence[Atom], td: TreeDecomposition
) -> Dict[int, List[Atom]]:
    assignment: Dict[int, List[Atom]] = {}
    for a in atoms:
        vs = a.variables()
        for i, bag in enumerate(td.bags):
            if vs <= bag:
                assignment.setdefault(i, []).append(a)
                break
        else:
            raise ClassMembershipError(
                "decomposition has no bag containing atom %r" % (a,)
            )
    return assignment


def _atom_with_variables(atoms: Sequence[Atom], variables: FrozenSet[Variable]) -> Atom:
    for a in atoms:
        if a.variables() == variables:
            return a
    raise ClassMembershipError(
        "cover edge %r corresponds to no atom" % (sorted(map(repr, variables)),)
    )


def _unary_domain(
    v: Variable, atoms: Sequence[Atom], db: Database
) -> FrozenSet[Mapping]:
    """All values ``v`` can take in any atom mentioning it (a tight unary
    relation used to pad bag variables not covered by local atoms)."""
    for a in atoms:
        if v in a.variables():
            return frozenset(m.restrict([v]) for m in _scan(a, db))
    raise ClassMembershipError("variable %r occurs in no atom" % (v,))


def _decomposition_join_tree(
    td: TreeDecomposition, synthetic_atoms: Sequence[Atom]
) -> List[Tuple[int, int]]:
    """Orient the decomposition tree as child→parent links over the indices
    of the synthetic atoms (skipping empty bags, which were dropped)."""
    # Map original node ids to synthetic indices.
    kept: Dict[int, int] = {}
    for idx, a in enumerate(synthetic_atoms):
        original = int(a.relation.rsplit("_", 1)[1])
        kept[original] = idx
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(td.bags))}
    for i, j in td.tree_edges:
        adjacency[i].add(j)
        adjacency[j].add(i)
    # BFS from the first kept node over the *original* tree, emitting links
    # between nearest kept ancestors (empty bags are contracted away).
    root = next(iter(sorted(kept)))
    links: List[Tuple[int, int]] = []
    seen = {root}
    stack: List[Tuple[int, int]] = [(root, root)]  # (node, nearest kept ancestor)
    while stack:
        node, anchor = stack.pop()
        for neighbour in adjacency[node]:
            if neighbour in seen:
                continue
            seen.add(neighbour)
            if neighbour in kept:
                if neighbour != anchor:
                    links.append((kept[neighbour], kept[anchor]))
                stack.append((neighbour, neighbour))
            else:
                stack.append((neighbour, anchor))
    return links
