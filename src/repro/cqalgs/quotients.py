"""Variable-identification quotients of CQs.

A *quotient* ``q/θ`` of a CQ ``q`` identifies variables according to a
partition ``θ`` of its variables, where no class contains two distinct free
variables (answers are keyed by free-variable names, so merging free
variables would change the answer signature).  The class containing a free
variable is represented by that free variable; purely existential classes
by an arbitrary member.

Quotients are the witness space of CQ approximations (Barceló–Libkin–Romero
[4], used by Section 5/6 of the paper): every ``TW(k)``- or ``HW'(k)``-query
contained in ``q`` is contained in some quotient of ``q`` that lies in the
class — because a containment homomorphism ``q → canonical(q')`` induces a
variable identification whose image is a subquery of ``q'``, and both
classes are closed under subqueries.  Hence maximal in-class quotients are
exactly the approximations.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from ..core.cq import ConjunctiveQuery
from ..core.terms import Variable
from ..exceptions import BudgetExceededError, ConstantsNotSupportedError

#: Quotient enumeration is exponential (Bell numbers); cap the variables.
QUOTIENT_VARIABLE_LIMIT = 12


def quotient(query: ConjunctiveQuery, blocks: Sequence[Sequence[Variable]]) -> ConjunctiveQuery:
    """The quotient of ``query`` by the partition ``blocks``.

    Each block is collapsed to a single representative — the block's free
    variable if it has one (at most one allowed), else its first member.
    Variables absent from every block stay untouched.
    """
    frees = frozenset(query.free_variables)
    renaming: Dict[Variable, Variable] = {}
    for block in blocks:
        block_frees = [v for v in block if v in frees]
        if len(block_frees) > 1:
            raise ValueError(
                "block %r merges distinct free variables %r" % (block, block_frees)
            )
        representative = block_frees[0] if block_frees else block[0]
        for v in block:
            renaming[v] = representative
    return query.rename(renaming)


def enumerate_quotients(query: ConjunctiveQuery) -> Iterator[ConjunctiveQuery]:
    """All quotients of ``query`` (including the identity quotient).

    Partitions are enumerated by the standard restricted-growth recursion;
    blocks violating the one-free-variable rule are pruned on the fly.
    Intended for approximation search; the paper's Section 5 assumption of
    constant-free queries is enforced.
    """
    if query.constants():
        raise ConstantsNotSupportedError(
            "quotient-based approximation requires a constant-free query "
            "(Section 5 of the paper); got constants %r" % (sorted(query.constants()),)
        )
    variables = sorted(query.variables())
    if len(variables) > QUOTIENT_VARIABLE_LIMIT:
        raise BudgetExceededError(
            "quotient enumeration limited to %d variables, got %d"
            % (QUOTIENT_VARIABLE_LIMIT, len(variables))
        )
    frees = frozenset(query.free_variables)
    seen = set()
    for partition in _partitions(variables, frees):
        q = quotient(query, partition)
        key = (q.free_variables, q.atoms)
        if key not in seen:
            seen.add(key)
            yield q


def count_partitions(query: ConjunctiveQuery) -> int:
    """Number of admissible partitions (the size of the search space)."""
    variables = sorted(query.variables())
    frees = frozenset(query.free_variables)
    return sum(1 for _ in _partitions(variables, frees))


def _partitions(
    variables: List[Variable], frees: frozenset
) -> Iterator[List[List[Variable]]]:
    """Set partitions of ``variables`` with ≤ 1 free variable per block."""
    if not variables:
        yield []
        return

    def recurse(i: int, blocks: List[List[Variable]]) -> Iterator[List[List[Variable]]]:
        if i == len(variables):
            yield [list(b) for b in blocks]
            return
        v = variables[i]
        v_free = v in frees
        for b in blocks:
            if v_free and any(u in frees for u in b):
                continue
            b.append(v)
            yield from recurse(i + 1, blocks)
            b.pop()
        blocks.append([v])
        yield from recurse(i + 1, blocks)
        blocks.pop()

    yield from recurse(0, [])
