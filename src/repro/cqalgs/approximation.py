"""Approximations of CQs in ``TW(k)`` and ``HW'(k)`` (Barceló–Libkin–Romero).

A ``C``-approximation of ``q`` is a query ``q' ∈ C`` with ``q' ⊆ q`` such
that no ``q'' ∈ C`` satisfies ``q' ⊂ q'' ⊆ q`` (Section 5 of the paper;
[4]).  For constant-free CQs and the subquery-closed classes used here,
approximations are exactly the containment-maximal elements of

    ``{q/θ : θ admissible variable partition, q/θ ∈ C}``,

which always contains at least the total-collapse quotients (single
existential class per free-variable skeleton), so approximations exist.
The correctness of restricting to quotients: if ``q' ∈ C`` and ``q' ⊆ q``,
the Chandra–Merlin homomorphism ``h : q → canonical(q')`` makes the image
``h(q)`` a subquery of ``q'`` (hence in ``C``, by subquery closure) and a
quotient ``q/θ_h`` of ``q``, with ``q' ⊆ q/θ_h ⊆ q``.  Maximality therefore
may be checked within the quotient space.

These CQ-level approximations are the backbone of the paper's Section 6:
``UWB(k)``-approximations of unions of WDPTs are unions of CQ
approximations (Theorem 18).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..core.cq import ConjunctiveQuery
from ..exceptions import ConstantsNotSupportedError
from ..hypergraphs.beta import beta_hypertreewidth_at_most
from ..hypergraphs.hypergraph import hypergraph_of_cq
from ..hypergraphs.treewidth import treewidth_at_most
from .containment import is_contained_in, is_properly_contained_in
from .cores import core
from .quotients import enumerate_quotients

ClassTest = Callable[[ConjunctiveQuery], bool]


def in_tw(k: int) -> ClassTest:
    """Class predicate for ``TW(k)``."""

    def test(q: ConjunctiveQuery) -> bool:
        return treewidth_at_most(hypergraph_of_cq(q), k)

    return test


def in_beta_hw(k: int) -> ClassTest:
    """Class predicate for ``HW'(k)`` (β-hypertreewidth ≤ k)."""

    def test(q: ConjunctiveQuery) -> bool:
        return beta_hypertreewidth_at_most(hypergraph_of_cq(q), k)

    return test


def approximations(
    query: ConjunctiveQuery, class_test: ClassTest
) -> List[ConjunctiveQuery]:
    """All ``C``-approximations of ``query`` (up to equivalence).

    Returns cores of the containment-maximal in-class quotients, one
    representative per equivalence class, sorted deterministically.  If
    ``query`` itself is in the class, the result is ``[core(query)]``.
    """
    if query.constants():
        raise ConstantsNotSupportedError(
            "approximation requires a constant-free query (paper Section 5)"
        )
    if class_test(query):
        return [core(query)]
    candidates = [q for q in enumerate_quotients(query) if class_test(q)]
    maximal: List[ConjunctiveQuery] = []
    for q in candidates:
        if any(is_properly_contained_in(q, other) for other in candidates):
            continue
        maximal.append(q)
    # Deduplicate up to equivalence.
    unique: List[ConjunctiveQuery] = []
    for q in maximal:
        if not any(is_contained_in(q, u) and is_contained_in(u, q) for u in unique):
            unique.append(core(q))
    unique.sort(key=repr)
    return unique


def tw_approximations(query: ConjunctiveQuery, k: int) -> List[ConjunctiveQuery]:
    """All ``TW(k)``-approximations of ``query``."""
    return approximations(query, in_tw(k))


def beta_hw_approximations(query: ConjunctiveQuery, k: int) -> List[ConjunctiveQuery]:
    """All ``HW'(k)``-approximations of ``query``."""
    return approximations(query, in_beta_hw(k))


def is_approximation(
    candidate: ConjunctiveQuery, query: ConjunctiveQuery, class_test: ClassTest
) -> bool:
    """Is ``candidate`` a ``C``-approximation of ``query``?

    Checks the definition directly against the quotient witness space:
    ``candidate ∈ C``, ``candidate ⊆ query``, and no in-class quotient of
    ``query`` lies strictly between them.
    """
    if not class_test(candidate) or not is_contained_in(candidate, query):
        return False
    for q in enumerate_quotients(query):
        if not class_test(q):
            continue
        if is_contained_in(candidate, q) and is_contained_in(q, query):
            if is_properly_contained_in(candidate, q):
                return False
    return True


def union_approximation(
    queries: Sequence[ConjunctiveQuery], class_test: ClassTest
) -> List[ConjunctiveQuery]:
    """The ``C``-approximation of a union of CQs: the union of the
    per-disjunct approximations ([4]; the crucial ingredient of the paper's
    Theorem 18).  Contained disjuncts are *not* removed here; use
    :func:`repro.cqalgs.containment.reduce_union` for a minimal union."""
    out: List[ConjunctiveQuery] = []
    for q in queries:
        out.extend(approximations(q, class_test))
    return out
