"""Conjunctive-query algorithms.

Evaluation engines (naive, Yannakakis, bounded treewidth/hypertreewidth),
homomorphisms, containment, cores, quotients, and the CQ approximations of
Barceló–Libkin–Romero used by Sections 5–6 of the paper.
"""

from .approximation import (
    approximations,
    beta_hw_approximations,
    in_beta_hw,
    in_tw,
    is_approximation,
    tw_approximations,
    union_approximation,
)
from .containment import (
    are_equivalent,
    is_contained_in,
    is_properly_contained_in,
    reduce_union,
    union_contained,
    union_equivalent,
)
from .cores import (
    core,
    is_core,
    semantically_in_beta_hw,
    semantically_in_hw,
    semantically_in_tw,
)
from .dispatch import evaluate, holds
from .enumeration import enumerate_answers
from .homomorphism import (
    apply_homomorphism,
    has_query_homomorphism,
    is_query_homomorphism,
    query_homomorphisms,
)
from .naive import (
    count_homomorphisms,
    evaluate_naive,
    homomorphisms,
    is_answer,
    satisfiable,
)
from .quotients import count_partitions, enumerate_quotients, quotient
from .structured import evaluate_bounded_hypertreewidth, evaluate_bounded_treewidth
from .yannakakis import evaluate_acyclic, evaluate_with_join_tree

__all__ = [
    "approximations",
    "beta_hw_approximations",
    "in_beta_hw",
    "in_tw",
    "is_approximation",
    "tw_approximations",
    "union_approximation",
    "are_equivalent",
    "is_contained_in",
    "is_properly_contained_in",
    "reduce_union",
    "union_contained",
    "union_equivalent",
    "core",
    "is_core",
    "semantically_in_beta_hw",
    "semantically_in_hw",
    "semantically_in_tw",
    "evaluate",
    "holds",
    "enumerate_answers",
    "apply_homomorphism",
    "has_query_homomorphism",
    "is_query_homomorphism",
    "query_homomorphisms",
    "count_homomorphisms",
    "evaluate_naive",
    "homomorphisms",
    "is_answer",
    "satisfiable",
    "count_partitions",
    "enumerate_quotients",
    "quotient",
    "evaluate_bounded_hypertreewidth",
    "evaluate_bounded_treewidth",
    "evaluate_acyclic",
    "evaluate_with_join_tree",
]
