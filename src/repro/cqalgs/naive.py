"""Backtracking CQ evaluation.

The general-purpose engine: sound and complete for every CQ, exponential in
query size in the worst case (CQ evaluation is NP-complete, Section 3.1).
It is the baseline against which the structure-exploiting engines
(:mod:`repro.cqalgs.yannakakis`, :mod:`repro.cqalgs.tdeval`,
:mod:`repro.cqalgs.hweval`) are benchmarked, and the inner evaluator for
the per-node CQs of WDPT algorithms when no structure is declared.

The search instantiates atoms one at a time.  At each step the next atom is
chosen greedily by the *fail-first* heuristic — fewest matching facts under
the current partial assignment — which keeps the search tree small on the
workloads in scope.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..core.terms import Constant, Variable


def evaluate_naive(query: ConjunctiveQuery, db: Database) -> FrozenSet[Mapping]:
    """``q(D)``: all answer mappings ``h|_x̄`` (paper semantics).

    >>> from repro.core import atom, cq, Database
    >>> db = Database([atom("E", 1, 2), atom("E", 2, 3)])
    >>> sorted(len(m) for m in evaluate_naive(cq(["?x"], [atom("E", "?x", "?y")]), db))
    [1, 1]
    """
    frees = query.free_variables
    return frozenset(h.restrict(frees) for h in homomorphisms(query.atoms, db))


def is_answer(query: ConjunctiveQuery, db: Database, candidate: Mapping) -> bool:
    """Is ``candidate ∈ q(D)``?

    The candidate must be defined on exactly the free variables; the check
    then searches for a homomorphism extending it.
    """
    if candidate.domain() != frozenset(query.free_variables):
        return False
    return satisfiable(query.atoms, db, candidate)


def satisfiable(
    atoms: Iterable[Atom], db: Database, pre_assignment: Optional[Mapping] = None
) -> bool:
    """Is there a homomorphism from ``atoms`` to ``db`` extending
    ``pre_assignment``?  (Boolean CQ evaluation with parameters.)"""
    for _ in homomorphisms(atoms, db, pre_assignment, limit=1):
        return True
    return False


def homomorphisms(
    atoms: Iterable[Atom],
    db: Database,
    pre_assignment: Optional[Mapping] = None,
    limit: Optional[int] = None,
) -> Iterator[Mapping]:
    """Enumerate homomorphisms from ``atoms`` into ``db``.

    Each yielded mapping is total on the variables of ``atoms`` and extends
    ``pre_assignment``.  ``limit`` caps the number of results (handy for
    existence checks).  Duplicate total homomorphisms are never produced.
    """
    atom_list = list(atoms)
    assignment: Dict[Variable, Constant] = (
        dict(pre_assignment.items()) if pre_assignment is not None else {}
    )
    produced = 0
    for full in _search(atom_list, assignment, db):
        yield Mapping(full)
        produced += 1
        if limit is not None and produced >= limit:
            return


def count_homomorphisms(atoms: Iterable[Atom], db: Database) -> int:
    """Number of homomorphisms from ``atoms`` into ``db``."""
    return sum(1 for _ in homomorphisms(atoms, db))


def _search(
    remaining: List[Atom],
    assignment: Dict[Variable, Constant],
    db: Database,
) -> Iterator[Dict[Variable, Constant]]:
    if not remaining:
        yield dict(assignment)
        return
    index, candidates = _select_atom(remaining, assignment, db)
    chosen = remaining[index]
    rest = remaining[:index] + remaining[index + 1 :]
    for fact in candidates:
        bound: List[Variable] = []
        ok = True
        for pattern_arg, fact_arg in zip(chosen.args, fact.args):
            if isinstance(pattern_arg, Variable):
                assert isinstance(fact_arg, Constant)
                existing = assignment.get(pattern_arg)
                if existing is None:
                    assignment[pattern_arg] = fact_arg
                    bound.append(pattern_arg)
                elif existing != fact_arg:
                    ok = False
                    break
        if ok:
            yield from _search(rest, assignment, db)
        for v in bound:
            del assignment[v]


def _select_atom(
    remaining: List[Atom],
    assignment: Dict[Variable, Constant],
    db: Database,
) -> Tuple[int, List[Atom]]:
    """Fail-first: the atom with the fewest matching facts right now."""
    best_index = 0
    best_candidates: Optional[List[Atom]] = None
    for i, a in enumerate(remaining):
        instantiated = a.substitute(assignment)
        candidates = list(db.match(instantiated))
        if best_candidates is None or len(candidates) < len(best_candidates):
            best_index, best_candidates = i, candidates
            if not candidates:
                break
    assert best_candidates is not None
    return best_index, best_candidates
