"""Cores of conjunctive queries and semantic width membership.

The *core* of a CQ is a minimal equivalent subquery — the unique (up to
isomorphism) retract with no proper endomorphism fixing the free variables.
Cores power the semantic-optimization results the paper inherits from
Dalmau–Kolaitis–Vardi [10]: a CQ is equivalent to some query of treewidth
≤ k iff its core has treewidth ≤ k.  Section 6 of the paper leans on this
for the ``UWB(k)`` membership test (Theorem 17).

Computing the core is done by repeated *folding*: search for an
endomorphism whose image uses strictly fewer variables, replace the query
by its image, repeat.  Each fold removes at least one variable, so at most
``|vars|`` iterations run; each search is a homomorphism test (exponential
worst case, as it must be — core recognition is DP-complete).
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..core.atoms import Atom, variables_of
from ..core.cq import ConjunctiveQuery
from ..hypergraphs.beta import beta_hypertreewidth_at_most
from ..hypergraphs.hypergraph import hypergraph_of_cq
from ..hypergraphs.hypertree import hypertreewidth_at_most
from ..hypergraphs.treewidth import treewidth_at_most
from .homomorphism import apply_homomorphism, query_homomorphisms


def core(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of ``query`` (free variables are kept fixed).

    >>> from repro.core import atom, cq
    >>> q = cq([], [atom("E", "?x", "?y"), atom("E", "?u", "?v"), atom("E", "?v", "?u")])
    >>> sorted(core(q).variables()) == sorted(cq([], [atom("E", "?u", "?v"), atom("E", "?v", "?u")]).variables())
    True
    """
    atoms = frozenset(query.atoms)
    frees = {v: v for v in query.free_variables}
    while True:
        folded = _fold_once(atoms, frees)
        if folded is None:
            return ConjunctiveQuery(query.free_variables, atoms)
        atoms = folded


def _fold_once(atoms: FrozenSet[Atom], frees) -> Optional[FrozenSet[Atom]]:
    n_vars = len(variables_of(atoms))
    for h in query_homomorphisms(atoms, atoms, fixed=frees):
        image = apply_homomorphism(atoms, h)
        if len(variables_of(image)) < n_vars:
            return frozenset(image)
    return None


def is_core(query: ConjunctiveQuery) -> bool:
    """Has ``query`` no proper fold (i.e. is it its own core)?"""
    return _fold_once(frozenset(query.atoms), {v: v for v in query.free_variables}) is None


def semantically_in_tw(query: ConjunctiveQuery, k: int) -> bool:
    """Is ``query`` equivalent to some CQ of treewidth ≤ k?

    By [10] this holds iff the core has treewidth ≤ k.
    """
    return treewidth_at_most(hypergraph_of_cq(core(query)), k)


def semantically_in_hw(query: ConjunctiveQuery, k: int) -> bool:
    """Core-based test for equivalence to a CQ of hypertreewidth ≤ k.

    ``core(q) ∈ HW(k)`` is *sufficient* for semantic membership (the core is
    equivalent to ``q``).  It is also necessary for every class closed under
    subqueries, because the core is a retract — hence an atom-subset — of
    any equivalent witness.  Plain ``HW(k)`` is **not** subquery-closed,
    which is exactly why Section 5 of the paper switches to ``HW'(k)``; for
    the subquery-closed variant use :func:`semantically_in_beta_hw`, which
    is sound and complete.
    """
    return hypertreewidth_at_most(hypergraph_of_cq(core(query)), k)


def semantically_in_beta_hw(query: ConjunctiveQuery, k: int) -> bool:
    """Is ``query`` equivalent to some CQ in ``HW'(k)`` (β-hypertreewidth
    ≤ k)?  Sound and complete: ``HW'(k)`` is closed under subqueries, and
    the core of any witness is a subquery of it, so membership holds iff
    the core is in ``HW'(k)``."""
    return beta_hypertreewidth_at_most(hypergraph_of_cq(core(query)), k)
