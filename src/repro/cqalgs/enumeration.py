"""Answer enumeration with bounded memory.

The set-returning engines materialize ``q(D)`` in full.  For large answer
sets, :func:`enumerate_answers` streams answers instead:

* acyclic queries get the classical Yannakakis-based enumeration — a full
  semi-join reduction first (polynomial preprocessing), then a backtracking
  walk over the *reduced* relations, whose every partial assignment is
  guaranteed to extend to an answer.  This yields answers with polynomial
  delay;
* other queries fall back to streaming the naive engine (duplicate
  projections are suppressed with a seen-set, so memory is proportional to
  the number of *distinct* answers emitted so far).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..hypergraphs.gyo import join_tree_children, join_tree_of_atoms, join_tree_root
from .naive import homomorphisms
from .yannakakis import _edge_shared_variables, _scan, _semijoin


def enumerate_answers(
    query: ConjunctiveQuery, db: Database, limit: Optional[int] = None
) -> Iterator[Mapping]:
    """Stream the distinct answers of ``q(D)``.

    >>> from repro.core import atom, cq, Database
    >>> db = Database([atom("E", 1, 2), atom("E", 2, 3)])
    >>> len(list(enumerate_answers(cq(["?x"], [atom("E", "?x", "?y")]), db)))
    2
    """
    atoms = sorted(query.atoms)
    links = join_tree_of_atoms(atoms)
    if links is not None and len(atoms) > 1:
        source: Iterator[Mapping] = _acyclic_stream(query, db, atoms, links)
    else:
        source = _naive_stream(query, db)
    emitted = 0
    for answer in source:
        yield answer
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def _naive_stream(query: ConjunctiveQuery, db: Database) -> Iterator[Mapping]:
    seen: Set[Mapping] = set()
    frees = query.free_variables
    for h in homomorphisms(query.atoms, db):
        answer = h.restrict(frees)
        if answer not in seen:
            seen.add(answer)
            yield answer


def _acyclic_stream(
    query: ConjunctiveQuery,
    db: Database,
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
) -> Iterator[Mapping]:
    """Semi-join-reduce, then walk the join tree; every branch of the walk
    extends to a full answer, so delay is polynomial per answer."""
    n = len(atoms)
    relations: List[List[Mapping]] = [_scan(a, db) for a in atoms]
    root = join_tree_root(links, n)
    children = join_tree_children(links, n)
    order = _preorder(root, children)
    shared = _edge_shared_variables(atoms, links)
    for node in reversed(order):
        for child in children[node]:
            relations[node] = _semijoin(
                relations[node], relations[child], shared[(node, child)]
            )
    for node in order:
        for child in children[node]:
            relations[child] = _semijoin(
                relations[child], relations[node], shared[(child, node)]
            )
    if not relations[root]:
        return

    frees = query.free_variables
    seen: Set[Mapping] = set()

    def walk(index: int, node: int, bound: Mapping) -> Iterator[Mapping]:
        candidates = [m for m in relations[node] if bound.compatible(m)]
        for m in candidates:
            extended = bound.union(m)
            kids = children[node]
            if not kids:
                yield extended
                continue
            yield from _across_children(kids, 0, extended)

    def _across_children(kids: List[int], i: int, bound: Mapping) -> Iterator[Mapping]:
        if i == len(kids):
            yield bound
            return
        for m in walk(0, kids[i], bound):
            yield from _across_children(kids, i + 1, m)

    for full in walk(0, root, Mapping()):
        answer = full.restrict(frees)
        if answer not in seen:
            seen.add(answer)
            yield answer


def _preorder(root: int, children: Dict[int, List[int]]) -> List[int]:
    order: List[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children[node])
    return order
