"""Homomorphisms between queries (atom sets).

Query-to-query homomorphisms are the engine behind the Chandra–Merlin
containment test, core computation, and the subsumption test for WDPTs.  A
homomorphism from atom set ``A`` to atom set ``B`` maps the variables of
``A`` to variables/constants of ``B`` such that every atom of ``A`` lands
in ``B`` (constants are fixed).  We reduce to database homomorphisms: map
``A`` into the canonical (frozen) database of ``B`` and unfreeze the result.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping as TMapping, Optional

from ..core.atoms import Atom
from ..core.canonical import (
    canonical_database_of_atoms,
    freeze_variable,
    is_frozen_constant,
    unfreeze_constant,
)
from ..core.mappings import Mapping
from ..core.terms import Constant, Term, Variable
from .naive import homomorphisms as db_homomorphisms

#: A query-to-query homomorphism: variables → variables-or-constants.
QueryHomomorphism = Dict[Variable, Term]


def query_homomorphisms(
    source: Iterable[Atom],
    target: Iterable[Atom],
    fixed: Optional[TMapping[Variable, Term]] = None,
    limit: Optional[int] = None,
) -> Iterator[QueryHomomorphism]:
    """Enumerate homomorphisms from ``source`` atoms to ``target`` atoms.

    ``fixed`` pins selected source variables to a target variable or
    constant (used e.g. to force free variables onto themselves in
    containment tests).
    """
    target_db = canonical_database_of_atoms(target)
    pre: Dict[Variable, Constant] = {}
    if fixed:
        for var, value in fixed.items():
            pre[var] = freeze_variable(value) if isinstance(value, Variable) else value
    produced = 0
    for h in db_homomorphisms(source, target_db, Mapping(pre)):
        yield _unfreeze(h)
        produced += 1
        if limit is not None and produced >= limit:
            return


def has_query_homomorphism(
    source: Iterable[Atom],
    target: Iterable[Atom],
    fixed: Optional[TMapping[Variable, Term]] = None,
) -> bool:
    """Existence version of :func:`query_homomorphisms`."""
    for _ in query_homomorphisms(source, target, fixed, limit=1):
        return True
    return False


def apply_homomorphism(atoms: Iterable[Atom], h: TMapping[Variable, Term]) -> frozenset:
    """Image of an atom set under a query homomorphism."""
    return frozenset(a.substitute(h) for a in atoms)


def is_query_homomorphism(
    source: Iterable[Atom], target: Iterable[Atom], h: TMapping[Variable, Term]
) -> bool:
    """Verify that ``h`` maps every atom of ``source`` into ``target``."""
    target_set = frozenset(target)
    return all(a.substitute(h) in target_set for a in source)


def _unfreeze(h: Mapping) -> QueryHomomorphism:
    out: QueryHomomorphism = {}
    for var, val in h.items():
        out[var] = unfreeze_constant(val) if is_frozen_constant(val) else val
    return out
