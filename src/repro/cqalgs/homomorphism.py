"""Homomorphisms between queries (atom sets).

Query-to-query homomorphisms are the engine behind the Chandra–Merlin
containment test, core computation, and the subsumption test for WDPTs.  A
homomorphism from atom set ``A`` to atom set ``B`` maps the variables of
``A`` to variables/constants of ``B`` such that every atom of ``A`` lands
in ``B`` (constants are fixed).  We reduce to database homomorphisms: map
``A`` into the canonical (frozen) database of ``B`` and unfreeze the result.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping as TMapping, Optional

from ..core.atoms import Atom
from ..core.canonical import (
    canonical_database_of_atoms,
    freeze_variable,
    is_frozen_constant,
    unfreeze_constant,
)
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..core.terms import Constant, Term, Variable
from ..hypergraphs.gyo import join_tree_of_atoms
from ..relalg.config import MODE_LEGACY, kernel_mode
from .naive import homomorphisms as db_homomorphisms
from .yannakakis import evaluate_with_join_tree

#: A query-to-query homomorphism: variables → variables-or-constants.
QueryHomomorphism = Dict[Variable, Term]


def query_homomorphisms(
    source: Iterable[Atom],
    target: Iterable[Atom],
    fixed: Optional[TMapping[Variable, Term]] = None,
    limit: Optional[int] = None,
) -> Iterator[QueryHomomorphism]:
    """Enumerate homomorphisms from ``source`` atoms to ``target`` atoms.

    ``fixed`` pins selected source variables to a target variable or
    constant (used e.g. to force free variables onto themselves in
    containment tests).
    """
    target_db = canonical_database_of_atoms(target)
    pre: Dict[Variable, Constant] = {}
    if fixed:
        for var, value in fixed.items():
            pre[var] = freeze_variable(value) if isinstance(value, Variable) else value
    produced = 0
    for h in _source_homomorphisms(source, target_db, Mapping(pre), limit):
        yield _unfreeze(h)
        produced += 1
        if limit is not None and produced >= limit:
            return


def _source_homomorphisms(
    source: Iterable[Atom],
    target_db: Database,
    pre: Mapping,
    limit: Optional[int],
) -> Iterable[Mapping]:
    """Homomorphisms of ``source`` into ``target_db`` extending ``pre``.

    Unlimited enumerations of an acyclic source run set-at-a-time through
    the Yannakakis kernels (``pre`` substituted in, the remaining
    variables evaluated as one full CQ over the canonical database);
    cyclic sources, bounded enumerations (where backtracking's early exit
    wins), and ``REPRO_KERNELS=legacy`` take the backtracking search.
    """
    atoms = tuple(sorted(set(source)))
    if limit is None and atoms and kernel_mode() != MODE_LEGACY:
        links = join_tree_of_atoms(atoms)
        if links is not None:
            if len(pre):
                substituted = tuple(a.substitute(pre) for a in atoms)
            else:
                substituted = atoms
            frees: set = set()
            for a in substituted:
                frees |= a.variables()
            q = ConjunctiveQuery(tuple(sorted(frees)), substituted)
            rows = evaluate_with_join_tree(q, target_db, substituted, links)
            if not len(pre):
                return rows
            base = pre.as_dict()
            out: List[Mapping] = []
            for m in rows:
                merged = dict(base)
                merged.update(m.items())
                out.append(Mapping.from_trusted(merged))
            return out
    return db_homomorphisms(atoms, target_db, pre)


def has_query_homomorphism(
    source: Iterable[Atom],
    target: Iterable[Atom],
    fixed: Optional[TMapping[Variable, Term]] = None,
) -> bool:
    """Existence version of :func:`query_homomorphisms`."""
    for _ in query_homomorphisms(source, target, fixed, limit=1):
        return True
    return False


def apply_homomorphism(atoms: Iterable[Atom], h: TMapping[Variable, Term]) -> frozenset:
    """Image of an atom set under a query homomorphism."""
    return frozenset(a.substitute(h) for a in atoms)


def is_query_homomorphism(
    source: Iterable[Atom], target: Iterable[Atom], h: TMapping[Variable, Term]
) -> bool:
    """Verify that ``h`` maps every atom of ``source`` into ``target``."""
    target_set = frozenset(target)
    return all(a.substitute(h) in target_set for a in source)


def _unfreeze(h: Mapping) -> QueryHomomorphism:
    out: QueryHomomorphism = {}
    for var, val in h.items():
        out[var] = unfreeze_constant(val) if is_frozen_constant(val) else val
    return out
