"""Yannakakis' algorithm for acyclic conjunctive queries.

The classical three-phase algorithm [21]: (1) a bottom-up semi-join sweep
over a join tree removes dangling tuples, (2) a top-down sweep removes the
rest, (3) a bottom-up join/projection pass assembles the answers while only
ever keeping variables that are still needed above (free variables plus the
interface to the parent).  Runs in time polynomial in ``|D| + |output|`` —
the concrete engine behind the paper's use of ``HW(1) = AC`` (Theorem 3
with ``k = 1``), and the backend of the bounded-width engines, which reduce
to an acyclic instance first.

Interchangeable execution paths implement the phases, selected per
run by :func:`repro.relalg.config.choose_kernel` (``REPRO_KERNELS``):

* ``columnar`` — the set-oriented kernels of :mod:`repro.relalg`:
  relations carry explicit variable schemas, shared-variable layouts are
  resolved once per join-tree edge, and rows are plain tuples;
* ``legacy`` — the historical tuple-at-a-time path over
  :class:`~repro.core.mappings.Mapping` objects (kept as the parity
  baseline; its kernels now also take their schemas from the atoms
  rather than from inspecting the first row);
* ``sql`` — on a SQLite backend, the **whole tree** runs as a single SQL
  statement (:meth:`~repro.storage.sqlite.SQLiteBackend.sql_yannakakis`):
  scans, both semi-join sweeps, and the join/projection phase are CTE
  layers, and only the final answer rows cross back into Python;
* ``dist`` — on a sharded backend (:mod:`repro.dist`), the whole tree
  runs as a shard program: each shard sweeps its hash partition with the
  columnar kernels, only join-key sets cross shard boundaries between
  levels, and the coordinator merges the gathered fragments with
  :func:`columnar_join_phase`.

With a worker pool installed (:mod:`repro.parallel`) the independent
pieces overlap on either Python path: the per-atom scans, and the
semi-join passes taken level-by-level over the join tree — within one
level every pass reads relations fixed by the previous level and writes a
distinct slot, so the parallel schedule computes exactly the sequential
relations.

:func:`satisfiable_with_join_tree` is the Boolean fast path the planner
routes the Theorem 6/8/9 inner loops through: for satisfiability the
bottom-up sweep alone decides the answer (the root empties iff some
relation empties), so the top-down sweep and the join phase are skipped
entirely and empty scans exit early.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..core.terms import Constant, Variable
from ..exceptions import ClassMembershipError
from ..hypergraphs.gyo import join_tree_children, join_tree_of_atoms, join_tree_root
from ..parallel.pool import current_pool
from ..relalg.config import (
    KERNEL_COLUMNAR,
    KERNEL_DIST,
    KERNEL_LEGACY,
    KERNEL_SQL,
    choose_kernel,
    resolve_kernel,
)
from ..relalg.relation import (
    Relation,
    hash_join,
    project,
    scan,
    semijoin,
    to_mappings,
)
from ..telemetry.resources import account_rows
from ..telemetry.tracer import current_tracer


def evaluate_acyclic(
    query: ConjunctiveQuery,
    db: Database,
    atoms: Optional[Sequence[Atom]] = None,
    links: Optional[Sequence[Tuple[int, int]]] = None,
) -> FrozenSet[Mapping]:
    """``q(D)`` for an acyclic CQ via Yannakakis.

    ``atoms``/``links`` optionally supply a precomputed join tree (e.g. the
    one the dispatcher or planner already built to decide acyclicity), so
    the GYO reduction is not rerun.  Raises
    :class:`~repro.exceptions.ClassMembershipError` when the query
    hypergraph is cyclic.
    """
    if atoms is None:
        atoms = sorted(query.atoms)
        links = None  # a caller-supplied tree is only valid for its atoms
    if links is None:
        links = join_tree_of_atoms(atoms)
    if links is None:
        raise ClassMembershipError("query is not acyclic: %r" % (query,))
    return evaluate_with_join_tree(query, db, atoms, links)


def evaluate_with_join_tree(
    query: ConjunctiveQuery,
    db: Database,
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
    kernel: Optional[str] = None,
) -> FrozenSet[Mapping]:
    """Yannakakis over an explicit join tree (``links``: child→parent).

    ``kernel`` optionally carries the plan's advisory kernel preference
    (the stats-store's historical winner); it is honored only when
    feasible for this database and pool state
    (:func:`~repro.relalg.config.resolve_kernel`).
    """
    n = len(atoms)
    if n == 0:
        return frozenset()
    tracer = current_tracer()
    pool = current_pool()
    kernel = resolve_kernel(db, pool, preferred=kernel)
    with tracer.span("yannakakis", atoms=n, kernel=kernel) as y_span:
        if kernel == KERNEL_DIST:
            # Sharded backend: the whole tree runs as a shard program —
            # local semi-join passes per shard, bounded key exchange
            # between levels, final merge on the coordinator
            # (:mod:`repro.dist.exec`).
            result = db.dist_yannakakis(atoms, links, query.free_variables)
        elif kernel == KERNEL_SQL:
            # SQLite-backed database: scans, both semi-join sweeps, and
            # the join/projection phase run as one SQL statement; only
            # the answer rows cross back into Python.
            with tracer.span("yannakakis.sql") as sp:
                result: FrozenSet[Mapping] = db.sql_yannakakis(
                    atoms, links, query.free_variables
                )
                account_rows(len(result))
                if tracer.enabled:
                    sp.set(answers=len(result))
        else:
            root = join_tree_root(links, n)
            children = join_tree_children(links, n)
            order = _topological(root, children)  # root first
            if kernel == KERNEL_COLUMNAR:
                result = _evaluate_columnar(
                    query, db, atoms, links, root, children, order, pool, tracer
                )
            else:
                result = _evaluate_legacy(
                    query, db, atoms, links, root, children, order, pool, tracer
                )
        if tracer.enabled:
            y_span.set(answers=len(result))
        return result


def satisfiable_with_join_tree(
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
    db: Database,
) -> bool:
    """Boolean fast path: is the Boolean CQ over ``atoms`` satisfiable?

    After the bottom-up semi-join sweep the root relation is non-empty
    iff the query is satisfiable, so the top-down sweep and the join
    phase never run; an empty scan or an emptied relation exits
    immediately (emptiness propagates to the root along the sweep).
    This is the engine behind the Theorem 6/8/9 inner loops
    (:meth:`repro.planner.planner.Planner.satisfiable_substituted`).
    Under ``REPRO_KERNELS=legacy`` it falls back to full evaluation,
    keeping that mode byte-for-byte the historical behaviour.
    """
    n = len(atoms)
    if n == 0:
        return False  # mirrors evaluate_with_join_tree's empty-query result
    pool = current_pool()
    kernel = choose_kernel(db, pool)
    if kernel == KERNEL_LEGACY:
        q = ConjunctiveQuery((), list(atoms))
        return bool(evaluate_with_join_tree(q, db, atoms, links))
    tracer = current_tracer()
    with tracer.span("yannakakis", atoms=n, kernel=kernel, boolean=True) as y_span:
        if kernel == KERNEL_DIST:
            result = bool(
                db.dist_yannakakis(atoms, links, (), exists_only=True)
            )
        elif kernel == KERNEL_SQL:
            with tracer.span("yannakakis.sql") as sp:
                result = bool(
                    db.sql_yannakakis(atoms, links, (), exists_only=True)
                )
                if tracer.enabled:
                    sp.set(satisfiable=result)
        else:
            result = _satisfiable_columnar(atoms, links, db, tracer)
        if tracer.enabled:
            y_span.set(satisfiable=result)
        return result


def _satisfiable_columnar(
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
    db: Database,
    tracer,
) -> bool:
    n = len(atoms)
    root = join_tree_root(links, n)
    children = join_tree_children(links, n)
    order = _topological(root, children)
    verdict: Optional[bool] = None
    relations: List[Relation] = []
    with tracer.span("yannakakis.scan") as sp:
        for a in atoms:
            rel = scan(a, db)
            if not rel.rows:
                verdict = False
                break
            relations.append(rel)
        account_rows(max((len(r) for r in relations), default=0))
        if tracer.enabled:
            sp.set(relation_sizes=[len(r) for r in relations])
    with tracer.span("yannakakis.semijoin_up") as sp:
        if verdict is None:
            for node in reversed(order):
                for child in children[node]:
                    relations[node] = semijoin(relations[node], relations[child])
                if not relations[node].rows:
                    verdict = False
                    break
            if verdict is None:
                verdict = bool(relations[root].rows)
        if tracer.enabled:
            sp.set(relation_sizes=[len(r) for r in relations])
    return verdict


# ---------------------------------------------------------------------------
# Columnar path (repro.relalg kernels)
# ---------------------------------------------------------------------------
def _evaluate_columnar(
    query: ConjunctiveQuery,
    db: Database,
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
    root: int,
    children: Dict[int, List[int]],
    order: List[int],
    pool,
    tracer,
) -> FrozenSet[Mapping]:
    n = len(atoms)
    with tracer.span("yannakakis.scan") as sp:
        if pool is not None and n >= 2:
            relations: List[Relation] = pool.map_tasks(
                lambda a: scan(a, db), list(atoms)
            )
        else:
            relations = [scan(a, db) for a in atoms]
        account_rows(max(len(r) for r in relations))
        if tracer.enabled:
            sp.set(relation_sizes=[len(r) for r in relations])
    levels = _levels(root, children, order) if pool is not None else None

    def sj(node: int, other: int, left: Relation, right: Relation) -> Relation:
        return semijoin(left, right)

    # Phase 1: bottom-up semi-joins (children filter parents).
    with tracer.span("yannakakis.semijoin_up") as sp:
        if levels is not None:
            _semijoin_up_parallel(pool, relations, children, levels, sj)
        else:
            for node in reversed(order):
                for child in children[node]:
                    relations[node] = semijoin(relations[node], relations[child])
        if tracer.enabled:
            sp.set(relation_sizes=[len(r) for r in relations])
    # Phase 2: top-down semi-joins (parents filter children).
    with tracer.span("yannakakis.semijoin_down") as sp:
        if levels is not None:
            _semijoin_down_parallel(pool, relations, links, children, levels, sj)
        else:
            for node in order:
                for child in children[node]:
                    relations[child] = semijoin(relations[child], relations[node])
        if tracer.enabled:
            sp.set(relation_sizes=[len(r) for r in relations])
    # Phase 3: bottom-up join keeping (free ∪ parent-interface) variables.
    return columnar_join_phase(
        frozenset(query.free_variables), atoms, links, relations, root,
        children, order, tracer,
    )


def columnar_join_phase(
    frees: FrozenSet[Variable],
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
    relations: List[Relation],
    root: int,
    children: Dict[int, List[int]],
    order: List[int],
    tracer,
) -> FrozenSet[Mapping]:
    """Phase 3 on columnar relations: the bottom-up join/projection pass,
    keeping (free ∪ parent-interface) variables per node.

    ``relations[i]`` is atom ``i``'s (already semi-join-reduced) relation.
    The keep sets are computed structurally from the **atoms**, so the
    relations may carry any sub-schema that still contains the free and
    interface variables — the distributed executor (:mod:`repro.dist`)
    reuses this pass on gathered fragments that were projected down to
    exactly those variables shard-side."""
    n = len(atoms)
    atom_vars = [a.variables() for a in atoms]
    subtree_vars = _subtree_variables(atom_vars, children, order)
    parent_of: Dict[int, int] = {c: p for c, p in links}
    partials: List[Optional[Relation]] = [None] * n
    with tracer.span("yannakakis.join") as sp:
        for node in reversed(order):
            current = relations[node]
            for child in children[node]:
                current = hash_join(current, partials[child])
            if node == root:
                keep = frees
            else:
                interface = atom_vars[parent_of[node]]
                keep = (frees & frozenset(subtree_vars[node])) | (
                    frozenset(subtree_vars[node]) & interface
                )
            account_rows(len(current))
            partials[node] = project(current, keep)
        if tracer.enabled:
            sp.set(partial_sizes=[len(p) for p in partials])
    return to_mappings(partials[root])


# ---------------------------------------------------------------------------
# Legacy path (tuple-at-a-time over Mapping objects)
# ---------------------------------------------------------------------------
def _evaluate_legacy(
    query: ConjunctiveQuery,
    db: Database,
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
    root: int,
    children: Dict[int, List[int]],
    order: List[int],
    pool,
    tracer,
) -> FrozenSet[Mapping]:
    n = len(atoms)
    with tracer.span("yannakakis.scan") as sp:
        if pool is not None and n >= 2:
            relations: List[List[Mapping]] = pool.map_tasks(
                lambda a: _scan(a, db), list(atoms)
            )
        else:
            relations = [_scan(a, db) for a in atoms]
        account_rows(max(len(r) for r in relations))
        if tracer.enabled:
            sp.set(relation_sizes=[len(r) for r in relations])
    levels = _levels(root, children, order) if pool is not None else None
    shared = _edge_shared_variables(atoms, links)

    def sj(node: int, other: int, left: List[Mapping], right: List[Mapping]) -> List[Mapping]:
        return _semijoin(left, right, shared[(node, other)])

    # Phase 1: bottom-up semi-joins (children filter parents).
    with tracer.span("yannakakis.semijoin_up") as sp:
        if levels is not None:
            _semijoin_up_parallel(pool, relations, children, levels, sj)
        else:
            for node in reversed(order):
                for child in children[node]:
                    relations[node] = sj(node, child, relations[node], relations[child])
        if tracer.enabled:
            sp.set(relation_sizes=[len(r) for r in relations])
    # Phase 2: top-down semi-joins (parents filter children).
    with tracer.span("yannakakis.semijoin_down") as sp:
        if levels is not None:
            _semijoin_down_parallel(pool, relations, links, children, levels, sj)
        else:
            for node in order:
                for child in children[node]:
                    relations[child] = sj(child, node, relations[child], relations[node])
        if tracer.enabled:
            sp.set(relation_sizes=[len(r) for r in relations])
    return _join_phase(
        query, db, atoms, links, relations, root, children, order, tracer
    )


def _join_phase(
    query: ConjunctiveQuery,
    db: Database,
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
    relations: List[List[Mapping]],
    root: int,
    children: Dict[int, List[int]],
    order: List[int],
    tracer,
) -> FrozenSet[Mapping]:
    """Phase 3: bottom-up join keeping (free ∪ parent-interface) variables.

    Schemas are tracked structurally — a node's relation is total on its
    atom's variables, a partial result on the ``keep`` set it was
    projected to — so the join kernels never inspect row contents to
    find the shared variables (robust for empty relations)."""
    n = len(atoms)
    frees = frozenset(query.free_variables)
    atom_vars = [a.variables() for a in atoms]
    subtree_vars = _subtree_variables(atom_vars, children, order)
    parent_of: Dict[int, int] = {c: p for c, p in links}

    partials: List[FrozenSet[Mapping]] = [frozenset()] * n
    partial_schema: List[FrozenSet[Variable]] = [frozenset()] * n
    with tracer.span("yannakakis.join") as sp:
        for node in reversed(order):
            current: FrozenSet[Mapping] = frozenset(relations[node])
            schema = frozenset(atom_vars[node])
            for child in children[node]:
                join_on = tuple(sorted(schema & partial_schema[child]))
                current = _join(current, partials[child], join_on)
                schema |= partial_schema[child]
            if node == root:
                keep = frees
            else:
                interface = atom_vars[parent_of[node]]
                keep = (frees & frozenset(subtree_vars[node])) | (
                    frozenset(subtree_vars[node]) & interface
                )
            account_rows(len(current))
            partials[node] = frozenset(m.restrict(keep) for m in current)
            partial_schema[node] = schema & keep
        if tracer.enabled:
            sp.set(partial_sizes=[len(p) for p in partials])
    return partials[root]


def _scan(a: Atom, db: Database) -> List[Mapping]:
    """The relation of atom ``a``: variable bindings of its matching facts."""
    out: List[Mapping] = []
    for fact in db.match(a):
        binding: Dict[Variable, Constant] = {}
        for pattern_arg, fact_arg in zip(a.args, fact.args):
            if isinstance(pattern_arg, Variable):
                assert isinstance(fact_arg, Constant)
                binding[pattern_arg] = fact_arg
        out.append(Mapping(binding))
    return out


def _semijoin(
    left: List[Mapping],
    right: Iterable[Mapping],
    shared: Sequence[Variable],
) -> List[Mapping]:
    """``left ⋉ right`` on ``shared`` (the schemas' common variables,
    supplied by the caller from the atoms/plan — not derived from row
    contents, so empty and boundary relations behave structurally)."""
    right = list(right)
    if not right:
        return []
    if not shared:
        return list(left)
    shared = tuple(shared)
    keys = {tuple(m[v] for v in shared) for m in right}
    return [m for m in left if tuple(m[v] for v in shared) in keys]


def _join(
    left: Iterable[Mapping],
    right: Iterable[Mapping],
    shared: Sequence[Variable],
) -> FrozenSet[Mapping]:
    """Natural join on ``shared`` (hash join; schemas from the caller)."""
    left = list(left)
    right = list(right)
    if not left or not right:
        return frozenset()
    shared = tuple(shared)
    buckets: Dict[Tuple[Constant, ...], List[Mapping]] = {}
    for m in right:
        buckets.setdefault(tuple(m[v] for v in shared), []).append(m)
    out: Set[Mapping] = set()
    for m in left:
        for other in buckets.get(tuple(m[v] for v in shared), ()):
            out.add(m.union(other))
    return frozenset(out)


def _topological(root: int, children: Dict[int, List[int]]) -> List[int]:
    """Nodes in root-first (pre-)order."""
    order: List[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children[node])
    return order


def _subtree_variables(
    atom_vars: Sequence[FrozenSet[Variable]],
    children: Dict[int, List[int]],
    order: List[int],
) -> List[Set[Variable]]:
    """Per node, the variables of its join-tree subtree."""
    subtree: List[Set[Variable]] = [set(v) for v in atom_vars]
    for node in reversed(order):
        for child in children[node]:
            subtree[node] |= subtree[child]
    return subtree


def _edge_shared_variables(
    atoms: Sequence[Atom], links: Sequence[Tuple[int, int]]
) -> Dict[Tuple[int, int], Tuple[Variable, ...]]:
    """The shared variables of every join-tree edge, both orientations —
    computed once per edge from the atoms (the structural schemas)."""
    var_sets = [a.variables() for a in atoms]
    shared: Dict[Tuple[int, int], Tuple[Variable, ...]] = {}
    for child, parent in links:
        common = tuple(sorted(var_sets[child] & var_sets[parent]))
        shared[(child, parent)] = common
        shared[(parent, child)] = common
    return shared


# ---------------------------------------------------------------------------
# Level-parallel semi-join sweeps (repro.parallel)
# ---------------------------------------------------------------------------
def _levels(
    root: int, children: Dict[int, List[int]], order: List[int]
) -> List[List[int]]:
    """Join-tree nodes grouped by depth, root level first."""
    depth = {root: 0}
    for node in order:  # preorder: parents before children
        for child in children[node]:
            depth[child] = depth[node] + 1
    levels: List[List[int]] = [[] for _ in range(max(depth.values()) + 1)]
    for node in order:
        levels[depth[node]].append(node)
    return levels


def _semijoin_up_parallel(
    pool,
    relations: List,
    children: Dict[int, List[int]],
    levels: List[List[int]],
    sj,
) -> None:
    """Phase 1, deepest level first.  A node's pass folds semi-joins with
    its (already-final, one level deeper) children, so nodes within a
    level are independent — each level is one fan-out.  ``sj(node,
    other, left, right)`` is the kernel (columnar or legacy)."""

    def filter_by_children(node: int):
        rel = relations[node]
        for child in children[node]:
            rel = sj(node, child, rel, relations[child])
        return rel

    for level in reversed(levels):
        if len(level) >= 2:
            for node, rel in zip(level, pool.map_tasks(filter_by_children, level)):
                relations[node] = rel
        else:
            for node in level:
                relations[node] = filter_by_children(node)


def _semijoin_down_parallel(
    pool,
    relations: List,
    links: Sequence[Tuple[int, int]],
    children: Dict[int, List[int]],
    levels: List[List[int]],
    sj,
) -> None:
    """Phase 2, root level first.  Each node of a level is filtered by its
    (already-filtered, one level up) parent — again one fan-out per
    level."""
    parent_of: Dict[int, int] = {c: p for c, p in links}

    def filter_by_parent(node: int):
        return sj(node, parent_of[node], relations[node], relations[parent_of[node]])

    for level in levels[1:]:
        if len(level) >= 2:
            for node, rel in zip(level, pool.map_tasks(filter_by_parent, level)):
                relations[node] = rel
        else:
            for node in level:
                relations[node] = filter_by_parent(node)
