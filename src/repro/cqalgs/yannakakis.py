"""Yannakakis' algorithm for acyclic conjunctive queries.

The classical three-phase algorithm [21]: (1) a bottom-up semi-join sweep
over a join tree removes dangling tuples, (2) a top-down sweep removes the
rest, (3) a bottom-up join/projection pass assembles the answers while only
ever keeping variables that are still needed above (free variables plus the
interface to the parent).  Runs in time polynomial in ``|D| + |output|`` —
the concrete engine behind the paper's use of ``HW(1) = AC`` (Theorem 3
with ``k = 1``), and the backend of the bounded-width engines, which reduce
to an acyclic instance first.

With a worker pool installed (:mod:`repro.parallel`) the independent
pieces overlap: the per-atom scans, and the semi-join passes taken
level-by-level over the join tree — within one level every pass reads
relations fixed by the previous level and writes a distinct slot, so the
parallel schedule computes exactly the sequential relations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..core.terms import Constant, Variable
from ..exceptions import ClassMembershipError
from ..hypergraphs.gyo import join_tree_children, join_tree_of_atoms, join_tree_root
from ..parallel.pool import current_pool
from ..telemetry.resources import account_rows
from ..telemetry.tracer import current_tracer


def evaluate_acyclic(
    query: ConjunctiveQuery,
    db: Database,
    atoms: Optional[Sequence[Atom]] = None,
    links: Optional[Sequence[Tuple[int, int]]] = None,
) -> FrozenSet[Mapping]:
    """``q(D)`` for an acyclic CQ via Yannakakis.

    ``atoms``/``links`` optionally supply a precomputed join tree (e.g. the
    one the dispatcher or planner already built to decide acyclicity), so
    the GYO reduction is not rerun.  Raises
    :class:`~repro.exceptions.ClassMembershipError` when the query
    hypergraph is cyclic.
    """
    if atoms is None:
        atoms = sorted(query.atoms)
        links = None  # a caller-supplied tree is only valid for its atoms
    if links is None:
        links = join_tree_of_atoms(atoms)
    if links is None:
        raise ClassMembershipError("query is not acyclic: %r" % (query,))
    return evaluate_with_join_tree(query, db, atoms, links)


def evaluate_with_join_tree(
    query: ConjunctiveQuery,
    db: Database,
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
) -> FrozenSet[Mapping]:
    """Yannakakis over an explicit join tree (``links``: child→parent)."""
    n = len(atoms)
    if n == 0:
        return frozenset()
    tracer = current_tracer()
    pool = current_pool()
    with tracer.span("yannakakis", atoms=n) as y_span:
        root = join_tree_root(links, n)
        children = join_tree_children(links, n)
        order = _topological(root, children)  # root first
        if pool is None and getattr(db, "supports_sql_semijoin", False):
            # SQLite-backed database: both semi-join sweeps run inside
            # the storage engine; only the join phase stays in Python.
            with tracer.span("yannakakis.sql_semijoin") as sp:
                relations: List[List[Mapping]] = db.sql_semijoin_reduce(
                    atoms, links
                )
                account_rows(max(len(r) for r in relations))
                if tracer.enabled:
                    sp.set(relation_sizes=[len(r) for r in relations])
        else:
            with tracer.span("yannakakis.scan") as sp:
                if pool is not None and n >= 2:
                    relations = pool.map_tasks(
                        lambda a: _scan(a, db), list(atoms)
                    )
                else:
                    relations = [_scan(a, db) for a in atoms]
                account_rows(max(len(r) for r in relations))
                if tracer.enabled:
                    sp.set(relation_sizes=[len(r) for r in relations])
            levels = _levels(root, children, order) if pool is not None else None

            # Phase 1: bottom-up semi-joins (children filter parents).
            with tracer.span("yannakakis.semijoin_up") as sp:
                if levels is not None:
                    _semijoin_up_parallel(pool, relations, children, levels)
                else:
                    for node in reversed(order):
                        for child in children[node]:
                            relations[node] = _semijoin(
                                relations[node], relations[child]
                            )
                if tracer.enabled:
                    sp.set(relation_sizes=[len(r) for r in relations])
            # Phase 2: top-down semi-joins (parents filter children).
            with tracer.span("yannakakis.semijoin_down") as sp:
                if levels is not None:
                    _semijoin_down_parallel(
                        pool, relations, links, children, levels
                    )
                else:
                    for node in order:
                        for child in children[node]:
                            relations[child] = _semijoin(
                                relations[child], relations[node]
                            )
                if tracer.enabled:
                    sp.set(relation_sizes=[len(r) for r in relations])
        result = _join_phase(
            query, db, atoms, links, relations, root, children, order, tracer
        )
        if tracer.enabled:
            y_span.set(answers=len(result))
        return result


def _join_phase(
    query: ConjunctiveQuery,
    db: Database,
    atoms: Sequence[Atom],
    links: Sequence[Tuple[int, int]],
    relations: List[List[Mapping]],
    root: int,
    children: Dict[int, List[int]],
    order: List[int],
    tracer,
) -> FrozenSet[Mapping]:
    """Phase 3: bottom-up join keeping (free ∪ parent-interface) variables."""
    n = len(atoms)
    frees = frozenset(query.free_variables)
    atom_vars = [a.variables() for a in atoms]
    subtree_vars: List[Set[Variable]] = [set(v) for v in atom_vars]
    for node in reversed(order):
        for child in children[node]:
            subtree_vars[node] |= subtree_vars[child]
    parent_of: Dict[int, int] = {c: p for c, p in links}

    partials: List[FrozenSet[Mapping]] = [frozenset()] * n
    with tracer.span("yannakakis.join") as sp:
        for node in reversed(order):
            current: FrozenSet[Mapping] = frozenset(relations[node])
            for child in children[node]:
                current = _join(current, partials[child])
            if node == root:
                keep = frees
            else:
                interface = atom_vars[parent_of[node]]
                keep = (frees & frozenset(subtree_vars[node])) | (
                    frozenset(subtree_vars[node]) & interface
                )
            account_rows(len(current))
            partials[node] = frozenset(m.restrict(keep) for m in current)
        if tracer.enabled:
            sp.set(partial_sizes=[len(p) for p in partials])
    return partials[root]


def _scan(a: Atom, db: Database) -> List[Mapping]:
    """The relation of atom ``a``: variable bindings of its matching facts."""
    out: List[Mapping] = []
    for fact in db.match(a):
        binding: Dict[Variable, Constant] = {}
        for pattern_arg, fact_arg in zip(a.args, fact.args):
            if isinstance(pattern_arg, Variable):
                assert isinstance(fact_arg, Constant)
                binding[pattern_arg] = fact_arg
        out.append(Mapping(binding))
    return out


def _semijoin(left: List[Mapping], right: Iterable[Mapping]) -> List[Mapping]:
    """``left ⋉ right`` on their common variables."""
    right = list(right)
    if not left or not right:
        return []
    shared = tuple(sorted(left[0].domain() & right[0].domain()))
    if not shared:
        return list(left)
    keys = {tuple(m[v] for v in shared) for m in right}
    return [m for m in left if tuple(m[v] for v in shared) in keys]


def _join(left: Iterable[Mapping], right: Iterable[Mapping]) -> FrozenSet[Mapping]:
    """Natural join of two sets of mappings (hash join on shared vars)."""
    left = list(left)
    right = list(right)
    if not left or not right:
        return frozenset()
    shared = tuple(sorted(left[0].domain() & right[0].domain()))
    buckets: Dict[Tuple[Constant, ...], List[Mapping]] = {}
    for m in right:
        buckets.setdefault(tuple(m[v] for v in shared), []).append(m)
    out: Set[Mapping] = set()
    for m in left:
        for other in buckets.get(tuple(m[v] for v in shared), ()):
            out.add(m.union(other))
    return frozenset(out)


def _topological(root: int, children: Dict[int, List[int]]) -> List[int]:
    """Nodes in root-first (pre-)order."""
    order: List[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children[node])
    return order


# ---------------------------------------------------------------------------
# Level-parallel semi-join sweeps (repro.parallel)
# ---------------------------------------------------------------------------
def _levels(
    root: int, children: Dict[int, List[int]], order: List[int]
) -> List[List[int]]:
    """Join-tree nodes grouped by depth, root level first."""
    depth = {root: 0}
    for node in order:  # preorder: parents before children
        for child in children[node]:
            depth[child] = depth[node] + 1
    levels: List[List[int]] = [[] for _ in range(max(depth.values()) + 1)]
    for node in order:
        levels[depth[node]].append(node)
    return levels


def _semijoin_up_parallel(
    pool,
    relations: List[List[Mapping]],
    children: Dict[int, List[int]],
    levels: List[List[int]],
) -> None:
    """Phase 1, deepest level first.  A node's pass folds semi-joins with
    its (already-final, one level deeper) children, so nodes within a
    level are independent — each level is one fan-out."""

    def filter_by_children(node: int) -> List[Mapping]:
        rel = relations[node]
        for child in children[node]:
            rel = _semijoin(rel, relations[child])
        return rel

    for level in reversed(levels):
        if len(level) >= 2:
            for node, rel in zip(level, pool.map_tasks(filter_by_children, level)):
                relations[node] = rel
        else:
            for node in level:
                relations[node] = filter_by_children(node)


def _semijoin_down_parallel(
    pool,
    relations: List[List[Mapping]],
    links: Sequence[Tuple[int, int]],
    children: Dict[int, List[int]],
    levels: List[List[int]],
) -> None:
    """Phase 2, root level first.  Each node of a level is filtered by its
    (already-filtered, one level up) parent — again one fan-out per
    level."""
    parent_of: Dict[int, int] = {c: p for c, p in links}

    def filter_by_parent(node: int) -> List[Mapping]:
        return _semijoin(relations[node], relations[parent_of[node]])

    for level in levels[1:]:
        if len(level) >= 2:
            for node, rel in zip(level, pool.map_tasks(filter_by_parent, level)):
                relations[node] = rel
        else:
            for node in level:
                relations[node] = filter_by_parent(node)
