"""Front-door CQ evaluation with engine selection.

:func:`evaluate` routes a query to the cheapest applicable engine:

* acyclic → Yannakakis (:mod:`repro.cqalgs.yannakakis`);
* small-treewidth (heuristic bound ≤ :data:`AUTO_TW_CUTOFF`) → the bounded
  treewidth engine (:mod:`repro.cqalgs.structured`);
* otherwise → backtracking (:mod:`repro.cqalgs.naive`).

All engines implement the same contract — the full set of answer mappings
``h|_x̄`` — and are cross-validated against each other in the test suite.
"""

from __future__ import annotations

from typing import FrozenSet

from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..hypergraphs.gyo import join_tree_of_atoms
from ..hypergraphs.hypergraph import hypergraph_of_cq
from ..hypergraphs.treewidth import treewidth_upper_bound
from .naive import evaluate_naive
from .structured import evaluate_bounded_hypertreewidth, evaluate_bounded_treewidth
from .yannakakis import evaluate_acyclic

#: Treewidth (heuristic upper bound) below which the TD engine is preferred.
AUTO_TW_CUTOFF = 3

_METHODS = ("auto", "naive", "yannakakis", "treewidth", "hypertreewidth")


def evaluate(
    query: ConjunctiveQuery, db: Database, method: str = "auto"
) -> FrozenSet[Mapping]:
    """``q(D)`` with the engine chosen by ``method`` (default ``auto``)."""
    if method not in _METHODS:
        raise ValueError("unknown method %r; pick one of %r" % (method, _METHODS))
    if method == "naive":
        return evaluate_naive(query, db)
    if method == "yannakakis":
        return evaluate_acyclic(query, db)
    if method == "treewidth":
        return evaluate_bounded_treewidth(query, db)
    if method == "hypertreewidth":
        return evaluate_bounded_hypertreewidth(query, db)
    # auto
    if join_tree_of_atoms(sorted(query.atoms)) is not None:
        return evaluate_acyclic(query, db)
    if treewidth_upper_bound(hypergraph_of_cq(query)) <= AUTO_TW_CUTOFF:
        return evaluate_bounded_treewidth(query, db)
    return evaluate_naive(query, db)


def holds(query: ConjunctiveQuery, db: Database) -> bool:
    """Boolean evaluation: is ``q(D)`` non-empty?"""
    if query.is_boolean():
        from .naive import satisfiable

        return satisfiable(query.atoms, db)
    return bool(evaluate(query, db))
