"""Front-door CQ evaluation with engine selection.

:func:`evaluate` routes a query to the cheapest applicable engine:

* acyclic → Yannakakis (:mod:`repro.cqalgs.yannakakis`);
* small-treewidth (heuristic bound ≤ the planner's ``tw_cutoff``,
  default :data:`AUTO_TW_CUTOFF`) → the bounded treewidth engine
  (:mod:`repro.cqalgs.structured`);
* otherwise → backtracking (:mod:`repro.cqalgs.naive`).

The ``auto`` path goes through :mod:`repro.planner`: the structural
analysis (join tree, width bounds, decomposition) is computed once per
query shape, cached in a bounded LRU keyed by the structural fingerprint,
and handed to the chosen engine — the join tree built to *decide*
acyclicity is the one Yannakakis *runs on*, never rebuilt.

All engines implement the same contract — the full set of answer mappings
``h|_x̄`` — and are cross-validated against each other in the test suite.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, TYPE_CHECKING

from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from .naive import evaluate_naive
from .structured import evaluate_bounded_hypertreewidth, evaluate_bounded_treewidth
from .yannakakis import evaluate_acyclic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner uses engines)
    from ..planner.planner import Planner

#: Treewidth (heuristic upper bound) below which the TD engine is preferred.
#: (Kept as the historical name; the planner's ``tw_cutoff`` defaults to it.)
AUTO_TW_CUTOFF = 3

_METHODS = ("auto", "naive", "yannakakis", "treewidth", "hypertreewidth")


def evaluate(
    query: ConjunctiveQuery,
    db: Database,
    method: str = "auto",
    planner: "Optional[Planner]" = None,
) -> FrozenSet[Mapping]:
    """``q(D)`` with the engine chosen by ``method`` (default ``auto``).

    ``auto`` routes through ``planner`` (the process-wide default planner
    when omitted), reusing cached structural analyses across calls.
    """
    if method not in _METHODS:
        raise ValueError("unknown method %r; pick one of %r" % (method, _METHODS))
    if method == "naive":
        return evaluate_naive(query, db)
    if method == "yannakakis":
        return evaluate_acyclic(query, db)
    if method == "treewidth":
        return evaluate_bounded_treewidth(query, db)
    if method == "hypertreewidth":
        return evaluate_bounded_hypertreewidth(query, db)
    # auto: plan-aware routing with memoized analysis.
    if planner is None:
        from ..planner.planner import get_default_planner

        planner = get_default_planner()
    return planner.evaluate_cq(query, db)


def holds(query: ConjunctiveQuery, db: Database) -> bool:
    """Boolean evaluation: is ``q(D)`` non-empty?"""
    if query.is_boolean():
        from .naive import satisfiable

        return satisfiable(query.atoms, db)
    return bool(evaluate(query, db))
