"""Well-designed pattern trees over arbitrary relational schemas.

A production-quality reproduction of

    Pablo Barceló and Reinhard Pichler.
    *Efficient Evaluation and Approximation of Well-designed Pattern
    Trees.*  PODS 2015.

The library implements the paper end to end: the relational/CQ substrate
(Section 2), treewidth/hypertreewidth machinery and the tractable WDPT
evaluation algorithms (Section 3), subsumption and subsumption-equivalence
(Section 4), semantic optimization and approximation (Section 5), and
unions of WDPTs (Section 6) — plus an {AND, OPT} SPARQL frontend over a
built-in triple store.

Quickstart::

    from repro import Database, Mapping, atom
    from repro.rdf import parse_query, RDFGraph
    from repro.wdpt import evaluate

    g = RDFGraph([("Swim", "recorded_by", "Caribou")])
    p = parse_query("(?x, recorded_by, ?y) OPT (?x, NME_rating, ?z)")
    answers = evaluate(p, g.to_database())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .core import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Database,
    Mapping,
    Schema,
    Variable,
    atom,
    cq,
)
from .exceptions import (
    BudgetExceededError,
    ClassMembershipError,
    ConstantsNotSupportedError,
    DecompositionError,
    NotGroundError,
    NotWellDesignedError,
    ParseError,
    ReproError,
    SchemaError,
)
from .wdpt import WDPT, UWDPT, wdpt_from_nested

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "Database",
    "Mapping",
    "Schema",
    "Variable",
    "atom",
    "cq",
    "BudgetExceededError",
    "ClassMembershipError",
    "ConstantsNotSupportedError",
    "DecompositionError",
    "NotGroundError",
    "NotWellDesignedError",
    "ParseError",
    "ReproError",
    "SchemaError",
    "WDPT",
    "UWDPT",
    "wdpt_from_nested",
    "__version__",
]
