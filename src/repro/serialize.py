"""JSON (de)serialization for queries and databases.

Stable, human-readable wire format so WDPTs, CQs, unions and databases can
be stored, diffed and shipped between tools:

* terms: ``"?x"`` for variables, ``{"c": value}`` for constants (the
  wrapper keeps constant strings like ``"?x"`` unambiguous);
* atoms: ``["R", term, …]``;
* CQ: ``{"free": […], "atoms": [[…], …]}``;
* WDPT: ``{"parents": […], "labels": [[atom…], …], "free": […]}``;
* UWDPT: ``{"members": [wdpt…]}``;
* Database: ``{"facts": [[…], …]}``.

Round-tripping is exact for values JSON can carry (strings, numbers,
booleans, ``None``); richer constant payloads raise with a clear message.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .core.atoms import Atom
from .core.cq import ConjunctiveQuery
from .core.database import Database
from .core.mappings import Mapping
from .core.terms import Constant, Term, Variable
from .exceptions import ReproError
from .wdpt.tree import PatternTree
from .wdpt.unions import UWDPT
from .wdpt.wdpt import WDPT

_JSON_SAFE = (str, int, float, bool, type(None))


class SerializationError(ReproError):
    """The object cannot be represented in the JSON wire format."""


# ---------------------------------------------------------------------------
# Terms and atoms
# ---------------------------------------------------------------------------
def term_to_json(t: Term) -> Any:
    if isinstance(t, Variable):
        return "?%s" % t.name
    if isinstance(t, Constant):
        if not isinstance(t.value, _JSON_SAFE):
            raise SerializationError(
                "constant payload %r is not JSON-serializable" % (t.value,)
            )
        return {"c": t.value}
    raise SerializationError("not a term: %r" % (t,))


def term_from_json(data: Any) -> Term:
    if isinstance(data, str) and data.startswith("?"):
        return Variable(data)
    if isinstance(data, dict) and set(data) == {"c"}:
        return Constant(data["c"])
    raise SerializationError("not a serialized term: %r" % (data,))


def atom_to_json(a: Atom) -> List[Any]:
    return [a.relation] + [term_to_json(t) for t in a.args]


def atom_from_json(data: Any) -> Atom:
    if not isinstance(data, list) or len(data) < 2 or not isinstance(data[0], str):
        raise SerializationError("not a serialized atom: %r" % (data,))
    return Atom(data[0], [term_from_json(t) for t in data[1:]])


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------
def cq_to_json(q: ConjunctiveQuery) -> Dict[str, Any]:
    return {
        "free": [term_to_json(v) for v in q.free_variables],
        "atoms": [atom_to_json(a) for a in sorted(q.atoms)],
    }


def cq_from_json(data: Dict[str, Any]) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        [term_from_json(v) for v in data["free"]],
        [atom_from_json(a) for a in data["atoms"]],
    )


def wdpt_to_json(p: WDPT) -> Dict[str, Any]:
    return {
        "parents": [p.tree.parent(n) for n in p.tree.nodes() if n != 0],
        "labels": [[atom_to_json(a) for a in sorted(label)] for label in p.labels],
        "free": [term_to_json(v) for v in p.free_variables],
    }


def wdpt_from_json(data: Dict[str, Any]) -> WDPT:
    return WDPT(
        PatternTree(data["parents"]),
        [[atom_from_json(a) for a in label] for label in data["labels"]],
        [term_from_json(v) for v in data["free"]],
    )


def uwdpt_to_json(phi: UWDPT) -> Dict[str, Any]:
    return {"members": [wdpt_to_json(p) for p in phi]}


def uwdpt_from_json(data: Dict[str, Any]) -> UWDPT:
    return UWDPT([wdpt_from_json(m) for m in data["members"]])


# ---------------------------------------------------------------------------
# Databases and mappings
# ---------------------------------------------------------------------------
def database_to_json(db: Database) -> Dict[str, Any]:
    return {"facts": [atom_to_json(f) for f in sorted(db.facts())]}


def database_from_json(data: Dict[str, Any]) -> Database:
    return Database(atom_from_json(f) for f in data["facts"])


def mapping_to_json(m: Mapping) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for var, val in sorted(m.items(), key=lambda kv: kv[0].name):
        if not isinstance(val.value, _JSON_SAFE):
            raise SerializationError(
                "mapping value %r is not JSON-serializable" % (val.value,)
            )
        out["?%s" % var.name] = val.value
    return out


def mapping_from_json(data: Dict[str, Any]) -> Mapping:
    return Mapping(data)


# ---------------------------------------------------------------------------
# String front doors
# ---------------------------------------------------------------------------
def dumps(obj: Any, indent: int = 2) -> str:
    """Serialize a WDPT / UWDPT / CQ / Database / Mapping to JSON text."""
    if isinstance(obj, WDPT):
        payload: Dict[str, Any] = {"kind": "wdpt", **wdpt_to_json(obj)}
    elif isinstance(obj, UWDPT):
        payload = {"kind": "uwdpt", **uwdpt_to_json(obj)}
    elif isinstance(obj, ConjunctiveQuery):
        payload = {"kind": "cq", **cq_to_json(obj)}
    elif isinstance(obj, Database):
        payload = {"kind": "database", **database_to_json(obj)}
    elif isinstance(obj, Mapping):
        payload = {"kind": "mapping", "bindings": mapping_to_json(obj)}
    else:
        raise SerializationError("cannot serialize %r" % (type(obj).__name__,))
    return json.dumps(payload, indent=indent, sort_keys=True)


def loads(text: str) -> Any:
    """Inverse of :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "wdpt":
        return wdpt_from_json(data)
    if kind == "uwdpt":
        return uwdpt_from_json(data)
    if kind == "cq":
        return cq_from_json(data)
    if kind == "database":
        return database_from_json(data)
    if kind == "mapping":
        return mapping_from_json(data["bindings"])
    raise SerializationError("unknown kind %r" % (kind,))
