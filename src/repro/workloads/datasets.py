"""Synthetic semistructured datasets with controlled incompleteness.

Two scenarios motivated by the paper's introduction:

* a **music catalog** (bands, records, optional ratings and founding
  years) as RDF — the domain of Example 1;
* a **company directory** (employees with optional phone / office / manager
  attributes) over a plain relational schema — exercising WDPTs beyond the
  single ternary relation.

Both generators are seeded and expose knobs for the *fraction of optional
information present*, which is exactly what OPT-style queries are for:
answers should degrade gracefully, never vanish, as data gets sparser.
"""

from __future__ import annotations

import random
from typing import List, Union

from ..core.atoms import Atom
from ..core.database import Database
from ..rdf.graph import RDFGraph

Rng = Union[int, random.Random, None]


def _rng(seed: Rng) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def music_catalog(
    n_bands: int = 10,
    records_per_band: int = 3,
    rating_fraction: float = 0.5,
    formed_in_fraction: float = 0.5,
    recent_fraction: float = 0.6,
    seed: Rng = 0,
) -> RDFGraph:
    """An RDF music catalog in the vocabulary of Example 1.

    Every record has ``recorded_by`` and ``published`` triples; NME ratings
    and founding years are present only for the given fractions of
    records/bands.
    """
    rng = _rng(seed)
    graph = RDFGraph()
    for b in range(n_bands):
        band = "band_%d" % b
        if rng.random() < formed_in_fraction:
            graph.add((band, "formed_in", str(1960 + rng.randrange(60))))
        for r in range(records_per_band):
            record = "record_%d_%d" % (b, r)
            graph.add((record, "recorded_by", band))
            era = "after_2010" if rng.random() < recent_fraction else "before_2010"
            graph.add((record, "published", era))
            if rng.random() < rating_fraction:
                graph.add((record, "NME_rating", str(1 + rng.randrange(10))))
    return graph


#: Relations of the company-directory schema.
COMPANY_RELATIONS = (
    "works_in",      # works_in(employee, department)
    "reports_to",    # reports_to(employee, manager)
    "phone",         # phone(employee, number)
    "office",        # office(employee, room)
    "dept_head",     # dept_head(department, employee)
)


def social_network(
    n_people: int = 20,
    avg_degree: int = 3,
    age_fraction: float = 0.6,
    city_fraction: float = 0.5,
    employer_fraction: float = 0.4,
    seed: Rng = 0,
) -> RDFGraph:
    """An RDF social network with systematically incomplete profiles.

    ``knows`` edges are total (the graph backbone); ``age``/``city``/
    ``works_for`` triples exist only for the configured fractions of
    people — the classic OPT workload of the SPARQL literature.
    """
    rng = _rng(seed)
    graph = RDFGraph()
    people = ["person_%d" % i for i in range(n_people)]
    target_edges = max(n_people, n_people * avg_degree // 2)
    while len(list(graph.triples_with(predicate="knows"))) < target_edges:
        a, b = rng.sample(people, 2)
        graph.add((a, "knows", b))
    for person in people:
        if rng.random() < age_fraction:
            graph.add((person, "age", str(18 + rng.randrange(60))))
        if rng.random() < city_fraction:
            graph.add((person, "city", "city_%d" % rng.randrange(5)))
        if rng.random() < employer_fraction:
            graph.add((person, "works_for", "corp_%d" % rng.randrange(4)))
    return graph


def company_directory(
    n_departments: int = 4,
    employees_per_department: int = 8,
    phone_fraction: float = 0.6,
    office_fraction: float = 0.5,
    manager_fraction: float = 0.8,
    seed: Rng = 0,
) -> Database:
    """A relational company directory with optional attributes.

    ``works_in`` is total; ``phone``/``office``/``reports_to`` hold only
    for the configured fractions of employees; each department has a head.
    """
    rng = _rng(seed)
    db = Database()
    for d in range(n_departments):
        dept = "dept_%d" % d
        staff: List[str] = []
        for e in range(employees_per_department):
            emp = "emp_%d_%d" % (d, e)
            staff.append(emp)
            db.add(Atom("works_in", (emp, dept)))
            if rng.random() < phone_fraction:
                db.add(Atom("phone", (emp, "x%04d" % rng.randrange(10000))))
            if rng.random() < office_fraction:
                db.add(Atom("office", (emp, "room_%d" % rng.randrange(100))))
        head = rng.choice(staff)
        db.add(Atom("dept_head", (dept, head)))
        for emp in staff:
            if emp != head and rng.random() < manager_fraction:
                db.add(Atom("reports_to", (emp, head)))
    return db
