"""The paper's explicit constructions, as executable families.

* :func:`figure1_wdpt` / :func:`example2_graph` — the running example
  (Figure 1, Examples 1–3, 7).
* :func:`figure2_family` — the pair ``(p₁⁽ⁿ⁾, p₂⁽ⁿ⁾)`` of Figure 2 behind
  Theorem 15's exponential lower bound on approximation size.
* :func:`prop2_family` — trees in ``g-TW(1)`` with unbounded interface
  (Proposition 2(2): global tractability does not imply bounded
  interface).
* :func:`three_colorability_instance` — Proposition 3's reduction showing
  ``EVAL(g-TW(1))`` NP-hard: the answer check encodes graph
  3-colorability.
* :func:`example5_theta` — the CQs ``θ_n`` (acyclic yet of unbounded
  treewidth, Example 5).
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..rdf.graph import RDFGraph
from ..rdf.parser import parse_query
from ..wdpt.tree import PatternTree
from ..wdpt.wdpt import WDPT

#: The paper's query (1), in the algebraic syntax accepted by the parser.
FIGURE1_QUERY_TEXT = (
    '(((?x, recorded_by, ?y) AND (?x, published, "after_2010"))'
    " OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)"
)


def figure1_wdpt(projection: Sequence[str] = ("?x", "?y", "?z", "?z2")) -> WDPT:
    """The WDPT of Figure 1 (query (1) of Example 1), over the triple
    relation.  ``projection`` defaults to all variables; Example 3 uses
    ``("?y", "?z", "?z2")`` and Example 7 uses ``("?y", "?z")``."""
    text = "SELECT %s WHERE %s" % (" ".join(projection), FIGURE1_QUERY_TEXT)
    return parse_query(text)


def example2_graph() -> RDFGraph:
    """The database of Example 2."""
    return RDFGraph(
        [
            ("Our_love", "recorded_by", "Caribou"),
            ("Our_love", "published", "after_2010"),
            ("Swim", "recorded_by", "Caribou"),
            ("Swim", "published", "after_2010"),
            ("Swim", "NME_rating", "2"),
        ]
    )


# ---------------------------------------------------------------------------
# Figure 2 / Theorem 15
# ---------------------------------------------------------------------------
def figure2_family(n: int, k: int = 2) -> Tuple[WDPT, WDPT]:
    """The pair ``(p₁⁽ⁿ⁾, p₂⁽ⁿ⁾)`` of Figure 2.

    ``p₂ ⊑ p₁``, ``p₂ ∈ WB(k)`` while ``p₁ ∉ WB(k)``, and
    ``|p₁| = O(n²)`` vs ``|p₂| = Ω(2ⁿ)`` — every ``WB(k)`` tree between
    them is at least as large as ``p₂`` (Theorem 15).
    """
    if n < 1 or k < 1:
        raise ValueError("need n ≥ 1 and k ≥ 1")
    alphas = ["?alpha%d" % i for i in range(k + 1)]
    zs = ["?z%d" % i for i in range(1, n + 1)]

    # --- p1 ---------------------------------------------------------------
    root1: List[Atom] = [Atom("a", ("?x",))]
    root1 += [Atom("b%d" % i, (alphas[i],)) for i in range(k + 1)]
    root1 += [Atom("c%d" % i, (alphas[0],)) for i in range(1, n + 1)]
    root1 += [Atom("c%d" % i, ("?z%d" % i,)) for i in range(1, n + 1)]
    clique1 = alphas + zs
    root1 += [
        Atom("d", (u, v)) for u in clique1 for v in clique1 if u != v
    ]
    root1 += [Atom("d", (alphas[0], alphas[0])), Atom("d", (alphas[1], alphas[1]))]
    # Leaf i carries b₁(z_i): in p₂'s canonical databases the only b₁ fact
    # is b₁(α₁), which is what forces z_i ↦ α₁ exactly when leaf i is part
    # of the chosen subtree (see the Theorem 15 proof sketch).
    leaves1: List[List[Atom]] = [[Atom("a0", ("?x0",)), Atom("e", tuple(zs))]]
    for i in range(1, n + 1):
        leaves1.append(
            [
                Atom("a%d" % i, ("?x%d" % i,)),
                Atom("b1", ("?z%d" % i,)),
                Atom("c%d" % i, (alphas[1],)),
            ]
        )
    frees = ["?x"] + ["?x%d" % i for i in range(n + 1)]
    p1 = WDPT(
        PatternTree([0] * (n + 1)),
        [root1] + leaves1,
        frees,
    )

    # --- p2 ---------------------------------------------------------------
    root2: List[Atom] = [Atom("a", ("?x",))]
    root2 += [Atom("b%d" % i, (alphas[i],)) for i in range(k + 1)]
    root2 += [Atom("c%d" % i, (alphas[0],)) for i in range(1, n + 1)]
    root2 += [Atom("d", (u, v)) for u in alphas for v in alphas if u != v]
    root2 += [Atom("d", (alphas[0], alphas[0])), Atom("d", (alphas[1], alphas[1]))]
    leaf2_0: List[Atom] = [Atom("a0", ("?x0",))]
    for combo in itertools.product([alphas[0], alphas[1]], repeat=n):
        leaf2_0.append(Atom("e", tuple(combo)))
    leaves2: List[List[Atom]] = [leaf2_0]
    for i in range(1, n + 1):
        leaves2.append([Atom("a%d" % i, ("?x%d" % i,)), Atom("c%d" % i, (alphas[1],))])
    p2 = WDPT(
        PatternTree([0] * (n + 1)),
        [root2] + leaves2,
        frees,
    )
    return p1, p2


# ---------------------------------------------------------------------------
# Proposition 2(2): global tractability without bounded interface
# ---------------------------------------------------------------------------
def prop2_family(n: int, k: int = 1) -> WDPT:
    """A WDPT in ``g-TW(k)`` (indeed ``g-TW(1)``) whose interface width is
    ``n`` — so no ``BI(c)`` contains the family as ``n`` grows."""
    if n < 1:
        raise ValueError("need n ≥ 1")
    ys = ["?y%d" % i for i in range(n)]
    root = [Atom("E", ("?x", y)) for y in ys]
    child = [Atom("G", (y,)) for y in ys]
    return WDPT(PatternTree([0]), [root, child], ["?x"])


# ---------------------------------------------------------------------------
# Proposition 3: EVAL(g-TW(1)) is NP-hard, via 3-colorability
# ---------------------------------------------------------------------------
def three_colorability_instance(
    n_vertices: int, edges: Sequence[Tuple[int, int]]
) -> Tuple[Database, WDPT, Mapping]:
    """The reduction of Proposition 3's proof.

    Returns ``(D, p, h)`` with ``D = {c(1,1), c(2,2), c(3,3)}`` and ``p``
    globally tractable (``g-TW(1)`` and ``g-HW(1)``) such that the input
    graph is 3-colorable iff ``h ∈ p(D)``.
    """
    db = Database([Atom("c", (v, v)) for v in (1, 2, 3)])
    root = [Atom("c", ("?u%d" % i, "?u%d" % i)) for i in range(n_vertices)]
    root.append(Atom("c", ("?x", "?x")))
    labels: List[List[Atom]] = [root]
    parents: List[int] = []
    frees = ["?x"]
    for j, (v1, v2) in enumerate(edges):
        if not (0 <= v1 < n_vertices and 0 <= v2 < n_vertices):
            raise ValueError("edge (%d, %d) out of range" % (v1, v2))
        for colour in (1, 2, 3):
            xj = "?xx%d_%d" % (j, colour)
            labels.append(
                [
                    Atom("c", ("?u%d" % v1, colour)),
                    Atom("c", ("?u%d" % v2, colour)),
                    Atom("c", (xj, xj)),
                ]
            )
            parents.append(0)
            frees.append(xj)
    p = WDPT(PatternTree(parents), labels, frees)
    h = Mapping({"?x": 1})
    return db, p, h


def odd_cycle_edges(length: int) -> List[Tuple[int, int]]:
    """Edges of a cycle (odd lengths ≥ 5 are 3-colorable; triangles too;
    use :func:`complete_graph_edges` for non-colorable instances)."""
    return [(i, (i + 1) % length) for i in range(length)]


def complete_graph_edges(n: int) -> List[Tuple[int, int]]:
    """Edges of ``K_n`` (3-colorable iff ``n ≤ 3``)."""
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


# ---------------------------------------------------------------------------
# Theorem 5-style SAT reduction: EVAL is NP-hard under local tractability
# ---------------------------------------------------------------------------
def sat_eval_instance(
    n_variables: int, clauses: Sequence[Sequence[int]]
) -> Tuple[Database, WDPT, Mapping]:
    """Encode CNF satisfiability into ``EVAL`` (the mechanism behind
    Theorem 5 / Proposition 1's NP-hardness, in the style of
    Proposition 3's appendix construction).

    Clauses use DIMACS conventions: literal ``+i`` is variable ``i``
    positive, ``−i`` negative (variables are 1-based).  Returns
    ``(D, p, h)`` with ``p ∈ ℓ-TW(1)`` and ``h ∈ p(D)`` iff the formula is
    satisfiable:

    * the root guesses an assignment (``v(u_i)`` with ``v(0), v(1) ∈ D``);
    * one optional child per clause matches exactly the assignments that
      *violate* the clause (every literal false), introducing a fresh free
      variable;
    * ``h`` binds only the root's anchor, so it is an answer iff some
      assignment blocks every violation gadget — i.e. satisfies every
      clause.
    """
    db = Database(
        [
            Atom("v", (0,)),
            Atom("v", (1,)),
            Atom("anchor", ("ok",)),
            Atom("false_pos", (0,)),   # a positive literal is false at 0
            Atom("false_neg", (1,)),   # a negative literal is false at 1
        ]
    )
    root: List[Atom] = [Atom("v", ("?u%d" % i,)) for i in range(1, n_variables + 1)]
    root.append(Atom("anchor", ("?x",)))
    labels: List[List[Atom]] = [root]
    parents: List[int] = []
    frees = ["?x"]
    for j, clause in enumerate(clauses):
        gadget: List[Atom] = []
        for literal in clause:
            index = abs(literal)
            if not 1 <= index <= n_variables:
                raise ValueError("literal %d out of range" % literal)
            relation = "false_pos" if literal > 0 else "false_neg"
            gadget.append(Atom(relation, ("?u%d" % index,)))
        xj = "?viol%d" % j
        gadget.append(Atom("anchor", (xj,)))
        labels.append(gadget)
        parents.append(0)
        frees.append(xj)
    p = WDPT(PatternTree(parents), labels, frees)
    h = Mapping({"?x": "ok"})
    return db, p, h


def brute_force_sat(n_variables: int, clauses: Sequence[Sequence[int]]) -> bool:
    """Reference SAT check for validating the reduction (≤ ~20 vars)."""
    for bits in range(1 << n_variables):
        assignment = [(bits >> i) & 1 for i in range(n_variables)]
        if all(
            any(
                assignment[abs(l) - 1] == (1 if l > 0 else 0)
                for l in clause
            )
            for clause in clauses
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# Example 5: acyclic CQs of unbounded treewidth
# ---------------------------------------------------------------------------
def example5_theta(n: int) -> ConjunctiveQuery:
    """``θ_n := Ans() ← ⋀_{i<j} E(x_i, x_j), T_n(x₁, …, x_n)`` — in
    ``HW(1) = AC`` but of treewidth ``n − 1``."""
    if n < 2:
        raise ValueError("need n ≥ 2")
    xs = ["?x%d" % i for i in range(1, n + 1)]
    atoms = [Atom("E", (xs[i], xs[j])) for i in range(n) for j in range(i + 1, n)]
    atoms.append(Atom("T%d" % n, tuple(xs)))
    return ConjunctiveQuery((), atoms)
