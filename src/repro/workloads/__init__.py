"""Workload generators: random instances, paper constructions, datasets."""

from .datasets import COMPANY_RELATIONS, company_directory, music_catalog, social_network
from .families import (
    FIGURE1_QUERY_TEXT,
    brute_force_sat,
    sat_eval_instance,
    complete_graph_edges,
    example2_graph,
    example5_theta,
    figure1_wdpt,
    figure2_family,
    odd_cycle_edges,
    prop2_family,
    three_colorability_instance,
)
from .generators import (
    clique_cq,
    cycle_cq,
    grid_cq,
    path_cq,
    random_cq,
    random_database,
    random_graph_database,
    random_wdpt,
    star_cq,
)

__all__ = [
    "COMPANY_RELATIONS",
    "company_directory",
    "music_catalog",
    "social_network",
    "FIGURE1_QUERY_TEXT",
    "complete_graph_edges",
    "example2_graph",
    "example5_theta",
    "figure1_wdpt",
    "figure2_family",
    "odd_cycle_edges",
    "prop2_family",
    "three_colorability_instance",
    "brute_force_sat",
    "sat_eval_instance",
    "clique_cq",
    "cycle_cq",
    "grid_cq",
    "path_cq",
    "random_cq",
    "random_database",
    "random_graph_database",
    "random_wdpt",
    "star_cq",
]
