"""Seeded random generators for databases, CQs and WDPTs.

Everything takes an explicit :class:`random.Random` (or a seed) so that
tests and benchmarks are reproducible.  WDPT generation builds the tree
top-down and only ever shares variables between a node and its parent,
which guarantees well-designedness by construction.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.terms import Variable
from ..wdpt.tree import PatternTree
from ..wdpt.wdpt import WDPT

Rng = Union[int, random.Random, None]


def _rng(seed: Rng) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# ---------------------------------------------------------------------------
# Databases
# ---------------------------------------------------------------------------
def random_database(
    n_facts: int,
    relations: Sequence[str] = ("E",),
    arity: int = 2,
    domain_size: int = 10,
    seed: Rng = 0,
) -> Database:
    """A random database with ``n_facts`` facts over the given relations,
    arguments drawn uniformly from ``{0, …, domain_size − 1}``.

    ``n_facts`` is capped at the number of distinct possible facts
    (``|relations| · domain_size^arity``), since facts are a set.
    """
    rng = _rng(seed)
    db = Database()
    possible = len(list(relations)) * domain_size ** arity
    target = min(n_facts, possible)
    while len(db) < target:
        rel = rng.choice(list(relations))
        db.add(Atom(rel, tuple(rng.randrange(domain_size) for _ in range(arity))))
    return db


def random_graph_database(
    n_vertices: int, n_edges: int, relation: str = "E", seed: Rng = 0
) -> Database:
    """A random directed graph as a binary relation."""
    rng = _rng(seed)
    db = Database()
    target = min(n_edges, n_vertices * n_vertices)
    while len(db) < target:
        db.add(Atom(relation, (rng.randrange(n_vertices), rng.randrange(n_vertices))))
    return db


# ---------------------------------------------------------------------------
# Structured CQ families
# ---------------------------------------------------------------------------
def path_cq(length: int, relation: str = "E", frees: Optional[Sequence[str]] = None) -> ConjunctiveQuery:
    """``Ans(…) ← E(x₀,x₁), …, E(x_{n−1},x_n)`` — treewidth 1."""
    atoms = [
        Atom(relation, ("?x%d" % i, "?x%d" % (i + 1))) for i in range(length)
    ]
    if frees is None:
        frees = ["?x0", "?x%d" % length]
    return ConjunctiveQuery(frees, atoms)


def cycle_cq(length: int, relation: str = "E") -> ConjunctiveQuery:
    """A Boolean cycle of the given length — treewidth 2 for length ≥ 3."""
    atoms = [
        Atom(relation, ("?x%d" % i, "?x%d" % ((i + 1) % length))) for i in range(length)
    ]
    return ConjunctiveQuery((), atoms)


def clique_cq(size: int, relation: str = "E") -> ConjunctiveQuery:
    """A Boolean clique — treewidth ``size − 1`` (Example 4)."""
    atoms = [
        Atom(relation, ("?x%d" % i, "?x%d" % j))
        for i in range(size)
        for j in range(size)
        if i != j
    ]
    return ConjunctiveQuery((), atoms)


def grid_cq(rows: int, cols: int, relation: str = "E") -> ConjunctiveQuery:
    """A Boolean grid — treewidth ``min(rows, cols)``."""
    def v(i: int, j: int) -> str:
        return "?g%d_%d" % (i, j)

    atoms: List[Atom] = []
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                atoms.append(Atom(relation, (v(i, j), v(i + 1, j))))
            if j + 1 < cols:
                atoms.append(Atom(relation, (v(i, j), v(i, j + 1))))
    return ConjunctiveQuery((), atoms)


def star_cq(rays: int, relation: str = "E", free_center: bool = True) -> ConjunctiveQuery:
    """A star — acyclic, treewidth 1."""
    atoms = [Atom(relation, ("?c", "?r%d" % i)) for i in range(rays)]
    return ConjunctiveQuery(["?c"] if free_center else (), atoms)


def random_cq(
    n_atoms: int,
    n_variables: int,
    relations: Sequence[str] = ("E",),
    arity: int = 2,
    n_free: int = 1,
    seed: Rng = 0,
) -> ConjunctiveQuery:
    """A random CQ over the given variable pool (connected not guaranteed)."""
    rng = _rng(seed)
    pool = ["?v%d" % i for i in range(n_variables)]
    atoms = [
        Atom(rng.choice(list(relations)), tuple(rng.choice(pool) for _ in range(arity)))
        for _ in range(n_atoms)
    ]
    used = sorted({v for a in atoms for v in a.variables()})
    frees = [v for v in used[: max(0, n_free)]]
    return ConjunctiveQuery(frees, atoms)


# ---------------------------------------------------------------------------
# Random WDPTs
# ---------------------------------------------------------------------------
def random_wdpt(
    depth: int = 2,
    fanout: int = 2,
    atoms_per_node: int = 2,
    fresh_vars_per_node: int = 2,
    shared_vars_per_child: int = 1,
    relations: Sequence[str] = ("E",),
    arity: int = 2,
    free_fraction: float = 0.5,
    seed: Rng = 0,
) -> WDPT:
    """A random WDPT, well-designed by construction.

    Each node owns ``fresh_vars_per_node`` new variables and shares
    ``shared_vars_per_child`` of its variables with each child, so
    variable occurrences always form root-connected regions.
    ``shared_vars_per_child`` directly controls the interface width.
    """
    rng = _rng(seed)
    parents: List[int] = []
    node_vars: List[List[Variable]] = []
    labels: List[List[Atom]] = []
    counter = [0]

    def fresh() -> Variable:
        counter[0] += 1
        return Variable("w%d" % counter[0])

    def build(parent: Optional[int], level: int) -> None:
        my_id = len(labels)
        if parent is not None:
            parents.append(parent)
        inherited: List[Variable] = []
        if parent is not None:
            pool = node_vars[parent]
            take = min(shared_vars_per_child, len(pool))
            inherited = rng.sample(pool, take)
        own = [fresh() for _ in range(fresh_vars_per_node)]
        mine = inherited + own
        node_vars.append(mine)
        atoms = []
        for _ in range(atoms_per_node):
            atoms.append(
                Atom(
                    rng.choice(list(relations)),
                    tuple(rng.choice(mine) for _ in range(arity)),
                )
            )
        # Make sure every declared variable occurs in some atom.
        missing = [v for v in mine if not any(v in a.variables() for a in atoms)]
        for v in missing:
            other = rng.choice(mine)
            args = tuple([v] + [other] * (arity - 1)) if arity > 1 else (v,)
            atoms.append(Atom(rng.choice(list(relations)), args))
        labels.append(atoms)
        if level < depth:
            for _ in range(fanout):
                build(my_id, level + 1)

    build(None, 0)
    all_vars = sorted({v for label in labels for a in label for v in a.variables()})
    n_free = max(1, int(len(all_vars) * free_fraction))
    frees = rng.sample(all_vars, min(n_free, len(all_vars)))
    return WDPT(PatternTree(parents), labels, sorted(frees))
