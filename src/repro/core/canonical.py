"""Canonical ("frozen") databases.

The canonical database of a CQ ``q`` freezes every variable into a fresh
constant and reads the body atoms as facts.  It is the standard tool behind
the Chandra–Merlin containment test, behind the subsumption test for WDPTs
(Section 4), and behind the approximation machinery (Section 5): a query
``q'`` is contained in ``q`` iff ``q`` has a homomorphism into the canonical
database of ``q'`` mapping frozen free variables correspondingly.

Frozen constants are :class:`FrozenVariable` payloads wrapped in
:class:`~repro.core.terms.Constant`, so freezing never collides with
constants already present in a query and can always be inverted.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .atoms import Atom
from .database import Database
from .cq import ConjunctiveQuery
from .mappings import Mapping
from .terms import Constant, Variable


class FrozenVariable:
    """The payload of a constant obtained by freezing ``variable``.

    Hashable, equality by wrapped variable; ``repr`` renders as ``⌊x⌋``.
    """

    __slots__ = ("variable", "_hash")

    def __init__(self, variable: Variable):
        self.variable = variable
        self._hash = hash(("FrozenVariable", variable))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FrozenVariable) and other.variable == self.variable

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "⌊%s⌋" % self.variable.name

    def __lt__(self, other: "FrozenVariable") -> bool:
        if not isinstance(other, FrozenVariable):
            return NotImplemented
        return self.variable < other.variable


def freeze_variable(v: Variable) -> Constant:
    """The frozen constant ``⌊v⌋`` of variable ``v``."""
    return Constant(FrozenVariable(v))


def freezing_of(variables: Iterable[Variable]) -> Mapping:
    """The mapping sending each variable to its frozen constant."""
    return Mapping({v: freeze_variable(v) for v in variables})


def freeze_atoms(atoms: Iterable[Atom]) -> Tuple[Atom, ...]:
    """Freeze every variable of ``atoms`` (result atoms are ground)."""
    out = []
    for a in atoms:
        out.append(
            Atom(
                a.relation,
                tuple(
                    freeze_variable(t) if isinstance(t, Variable) else t for t in a.args
                ),
            )
        )
    return tuple(out)


def canonical_database(query: ConjunctiveQuery) -> Database:
    """The canonical database ``D_q`` of ``query``."""
    return Database(freeze_atoms(query.atoms))


def canonical_database_of_atoms(atoms: Iterable[Atom]) -> Database:
    """The canonical database of a bare atom set."""
    return Database(freeze_atoms(atoms))


def is_frozen_constant(c: Constant) -> bool:
    """``True`` iff ``c`` arose from freezing a variable."""
    return isinstance(c.value, FrozenVariable)


def unfreeze_constant(c: Constant) -> Variable:
    """Invert :func:`freeze_variable` (raises on ordinary constants)."""
    if not isinstance(c.value, FrozenVariable):
        raise ValueError("%r is not a frozen variable" % (c,))
    return c.value.variable


def unfreeze_mapping(m: Mapping) -> Dict[Variable, object]:
    """Turn a mapping into a variable→(variable-or-constant) dict.

    Frozen constants in the range are unfrozen back into the variables they
    came from; ordinary constants stay.  Used to read a homomorphism into a
    canonical database back as a query-to-query homomorphism.
    """
    out: Dict[Variable, object] = {}
    for var, val in m.items():
        out[var] = unfreeze_constant(val) if is_frozen_constant(val) else val
    return out
