"""Terms: the variables and constants that populate relational atoms.

The paper fixes two disjoint countably infinite sets: constants ``U`` and
variables ``X`` (Section 2).  We model them as two small immutable classes.
Both are interned-friendly value objects: equality and hashing are by name,
so structurally equal terms behave identically everywhere (dict keys, set
members, mapping domains).

The convention throughout the library is:

* :class:`Variable` — written ``?name`` in ``repr`` output, mirroring SPARQL.
* :class:`Constant` — wraps an arbitrary hashable payload (strings, ints,
  frozen tuples, ...).

:func:`term` coerces plain Python values into terms using the common
shorthand that strings starting with ``"?"`` denote variables.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple, Union


class Variable:
    """A query variable (an element of the set **X** of the paper)."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError("variable name must be a non-empty string, got %r" % (name,))
        if name.startswith("?"):
            name = name[1:]
        if not name:
            raise ValueError("variable name must not be just '?'")
        self.name = name
        self._hash = hash(("Variable", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "?%s" % self.name

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name


class Constant:
    """A constant (an element of the set **U** of the paper).

    The wrapped ``value`` may be any hashable Python object.  Two constants
    are equal iff their values are equal.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: Hashable):
        if isinstance(value, (Variable, Constant)):
            raise ValueError("constant payload must be a plain value, got %r" % (value,))
        self.value = value
        self._hash = hash(("Constant", value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and other.value == self.value

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return repr(self.value)

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        try:
            return self.value < other.value  # type: ignore[operator]
        except TypeError:
            return str(self.value) < str(other.value)


Term = Union[Variable, Constant]


def term(value: object) -> Term:
    """Coerce ``value`` into a :class:`Variable` or :class:`Constant`.

    Strings starting with ``"?"`` become variables (``"?x"`` → ``?x``);
    every other hashable value becomes a constant.  Existing terms pass
    through unchanged.

    >>> term("?x")
    ?x
    >>> term("Caribou")
    'Caribou'
    >>> term(3)
    3
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value.startswith("?"):
        return Variable(value)
    return Constant(value)  # type: ignore[arg-type]


def terms(values: Iterable[object]) -> Tuple[Term, ...]:
    """Coerce an iterable of plain values into a tuple of terms."""
    return tuple(term(v) for v in values)


def is_variable(t: object) -> bool:
    """Return ``True`` iff ``t`` is a :class:`Variable`."""
    return isinstance(t, Variable)


def is_constant(t: object) -> bool:
    """Return ``True`` iff ``t`` is a :class:`Constant`."""
    return isinstance(t, Constant)
