"""Relational atoms and schemas.

A *relational atom* over a schema ``σ`` is an expression ``R(v̄)`` where
``R`` is a relation symbol of arity ``n > 0`` and ``v̄`` an ``n``-tuple over
``X ∪ U`` (Section 2 of the paper).  Atoms are immutable value objects.

A :class:`Schema` is an optional, lightweight arity registry.  Most of the
library infers schemas implicitly from the atoms it sees (as the paper does),
but a schema can be supplied to get eager arity checking.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional

from ..exceptions import SchemaError
from .terms import Constant, Term, Variable, term


class Atom:
    """An atom ``R(t₁, …, t_n)``.

    ``relation`` is the relation name (a plain string) and ``args`` a tuple
    of :class:`~repro.core.terms.Variable` / :class:`~repro.core.terms.Constant`.
    Plain Python values in ``args`` are coerced via
    :func:`repro.core.terms.term` (``"?x"`` → variable, everything else →
    constant).

    >>> Atom("recorded_by", ("?x", "?y"))
    recorded_by(?x, ?y)
    >>> Atom("published", ("?x", "after_2010")).constants()
    frozenset({'after_2010'})
    """

    __slots__ = ("relation", "args", "_hash")

    def __init__(self, relation: str, args: Iterable[object]):
        if not isinstance(relation, str) or not relation:
            raise SchemaError("relation name must be a non-empty string, got %r" % (relation,))
        coerced = tuple(term(a) for a in args)
        if not coerced:
            raise SchemaError("atom %s() has arity 0; arities must be positive" % relation)
        self.relation = relation
        self.args = coerced
        self._hash = hash((relation, coerced))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> FrozenSet[Variable]:
        """The set of variables occurring in this atom."""
        return frozenset(a for a in self.args if isinstance(a, Variable))

    def constants(self) -> FrozenSet[Constant]:
        """The set of constants occurring in this atom."""
        return frozenset(a for a in self.args if isinstance(a, Constant))

    def is_ground(self) -> bool:
        """``True`` iff the atom contains no variables (i.e. it is a fact)."""
        return all(isinstance(a, Constant) for a in self.args)

    def substitute(self, assignment: Mapping[Variable, Term]) -> "Atom":
        """Apply ``assignment`` to the variables of this atom.

        Variables outside the assignment's domain are left untouched, so the
        result may still contain variables (partial instantiation).
        """
        return Atom(
            self.relation,
            tuple(assignment.get(a, a) if isinstance(a, Variable) else a for a in self.args),
        )

    def rename(self, renaming: Mapping[Variable, Variable]) -> "Atom":
        """Apply a variable renaming (alias of :meth:`substitute`)."""
        return self.substitute(renaming)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and other._hash == self._hash
            and other.relation == self.relation
            and other.args == self.args
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "%s(%s)" % (self.relation, ", ".join(repr(a) for a in self.args))

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return (self.relation, [repr(a) for a in self.args]) < (
            other.relation,
            [repr(a) for a in other.args],
        )


def atom(relation: str, *args: object) -> Atom:
    """Convenience constructor: ``atom("E", "?x", "?y")``."""
    return Atom(relation, args)


class Schema:
    """A relational schema: a mapping from relation names to arities.

    Schemas are optional; when provided (e.g. to :class:`~repro.core.database.Database`)
    they enable eager arity checking via :meth:`validate_atom`.
    """

    __slots__ = ("_arities",)

    def __init__(self, arities: Optional[Mapping[str, int]] = None):
        self._arities: Dict[str, int] = {}
        if arities:
            for name, arity in arities.items():
                self.add_relation(name, arity)

    def add_relation(self, name: str, arity: int) -> None:
        """Register relation ``name`` with the given ``arity``.

        Re-registering with the same arity is a no-op; a conflicting arity
        raises :class:`~repro.exceptions.SchemaError`.
        """
        if not isinstance(arity, int) or arity < 1:
            raise SchemaError("arity of %s must be a positive integer, got %r" % (name, arity))
        existing = self._arities.get(name)
        if existing is not None and existing != arity:
            raise SchemaError(
                "relation %s already has arity %d, cannot re-register with arity %d"
                % (name, existing, arity)
            )
        self._arities[name] = arity

    def arity(self, name: str) -> int:
        """Arity of relation ``name`` (raises if unknown)."""
        try:
            return self._arities[name]
        except KeyError:
            raise SchemaError("unknown relation %s" % name) from None

    def relations(self) -> FrozenSet[str]:
        """All registered relation names."""
        return frozenset(self._arities)

    def __contains__(self, name: str) -> bool:
        return name in self._arities

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._arities))

    def __len__(self) -> int:
        return len(self._arities)

    def validate_atom(self, a: Atom) -> None:
        """Raise :class:`~repro.exceptions.SchemaError` unless ``a`` fits."""
        if a.relation not in self._arities:
            raise SchemaError("atom %r uses unknown relation %s" % (a, a.relation))
        if a.arity != self._arities[a.relation]:
            raise SchemaError(
                "atom %r has arity %d but relation %s has arity %d"
                % (a, a.arity, a.relation, self._arities[a.relation])
            )

    @classmethod
    def infer(cls, atoms: Iterable[Atom]) -> "Schema":
        """Build the schema implied by a collection of atoms."""
        schema = cls()
        for a in atoms:
            schema.add_relation(a.relation, a.arity)
        return schema

    def __repr__(self) -> str:
        inner = ", ".join("%s/%d" % (n, a) for n, a in sorted(self._arities.items()))
        return "Schema{%s}" % inner


def variables_of(atoms: Iterable[Atom]) -> FrozenSet[Variable]:
    """Union of the variable sets of ``atoms``."""
    out: set = set()
    for a in atoms:
        out.update(a.variables())
    return frozenset(out)


def constants_of(atoms: Iterable[Atom]) -> FrozenSet[Constant]:
    """Union of the constant sets of ``atoms``."""
    out: set = set()
    for a in atoms:
        out.update(a.constants())
    return frozenset(out)
