"""Relational substrate: terms, atoms, databases, mappings, CQs.

This package contains the data model shared by the whole library — it is the
"Section 2 (Preliminaries)" of the reproduction.
"""

from .atoms import Atom, Schema, atom, constants_of, variables_of
from .canonical import (
    FrozenVariable,
    canonical_database,
    canonical_database_of_atoms,
    freeze_atoms,
    freeze_variable,
    freezing_of,
    is_frozen_constant,
    unfreeze_constant,
    unfreeze_mapping,
)
from .cq import ConjunctiveQuery, cq, fresh_variable
from .io import load_facts, load_tsv_directory, save_facts, save_tsv_directory
from .database import Database
from .mappings import EMPTY_MAPPING, Mapping, is_maximal_in, maximal_mappings
from .terms import Constant, Term, Variable, is_constant, is_variable, term, terms

__all__ = [
    "Atom",
    "Schema",
    "atom",
    "constants_of",
    "variables_of",
    "FrozenVariable",
    "canonical_database",
    "canonical_database_of_atoms",
    "freeze_atoms",
    "freeze_variable",
    "freezing_of",
    "is_frozen_constant",
    "unfreeze_constant",
    "unfreeze_mapping",
    "ConjunctiveQuery",
    "cq",
    "fresh_variable",
    "load_facts",
    "load_tsv_directory",
    "save_facts",
    "save_tsv_directory",
    "Database",
    "EMPTY_MAPPING",
    "Mapping",
    "is_maximal_in",
    "maximal_mappings",
    "Constant",
    "Term",
    "Variable",
    "is_constant",
    "is_variable",
    "term",
    "terms",
]
