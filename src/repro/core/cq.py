"""Conjunctive queries.

A CQ over schema ``σ`` is a rule ``Ans(x̄) ← R₁(v̄₁), …, R_m(v̄_m)`` where
``x̄`` is a tuple of distinct variables among those in the body (equation (2)
of the paper).  Following the paper's (slightly non-standard) semantics, the
evaluation ``q(D)`` is the set of *mappings* ``h|_x̄`` for ``h`` a
homomorphism from ``q`` to ``D`` — answers are partial mappings keyed by
variable name, not positional tuples.

:class:`ConjunctiveQuery` is an immutable value object.  Evaluation lives in
:mod:`repro.cqalgs`; this module only carries structure (variables,
constants, free/existential split, renaming, Boolean/full restriction
helpers).
"""

from __future__ import annotations

from itertools import count
from typing import FrozenSet, Iterable, Mapping as TMapping, Optional, Tuple

from ..exceptions import SchemaError
from .atoms import Atom, constants_of, variables_of
from .terms import Constant, Term, Variable, term


class ConjunctiveQuery:
    """An immutable CQ ``Ans(x̄) ← body``.

    Parameters
    ----------
    free_variables:
        The tuple ``x̄`` of distinct free (answer) variables.  Each must
        occur in the body.  Strings like ``"?x"`` are coerced.
    atoms:
        The body atoms.  Order is irrelevant (the body is a set); duplicates
        are collapsed.

    >>> q = ConjunctiveQuery(["?x"], [Atom("E", ("?x", "?y"))])
    >>> q.free_variables
    (?x,)
    >>> q.existential_variables() == frozenset({Variable("y")})
    True
    """

    __slots__ = ("free_variables", "atoms", "_hash", "_fingerprint")

    def __init__(self, free_variables: Iterable[object], atoms: Iterable[Atom]):
        body = frozenset(atoms)
        if not body:
            raise SchemaError("a conjunctive query needs at least one body atom")
        frees: Tuple[Variable, ...] = tuple(
            _as_variable(v, "free variable") for v in free_variables
        )
        if len(set(frees)) != len(frees):
            raise SchemaError("free variables must be distinct, got %r" % (frees,))
        body_vars = variables_of(body)
        missing = [v for v in frees if v not in body_vars]
        if missing:
            raise SchemaError(
                "free variables %r do not occur in the query body" % (missing,)
            )
        self.free_variables = frees
        self.atoms = body
        self._hash = hash((frees, body))
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def variables(self) -> FrozenSet[Variable]:
        """All variables of the body."""
        return variables_of(self.atoms)

    def existential_variables(self) -> FrozenSet[Variable]:
        """Body variables that are not free."""
        return self.variables() - frozenset(self.free_variables)

    def constants(self) -> FrozenSet[Constant]:
        """All constants of the body."""
        return constants_of(self.atoms)

    def is_boolean(self) -> bool:
        """``True`` iff there are no free variables (``Ans()``)."""
        return not self.free_variables

    def is_full(self) -> bool:
        """``True`` iff every body variable is free (no projection)."""
        return self.variables() == frozenset(self.free_variables)

    def size(self) -> int:
        """Size in standard relational notation: total number of argument
        slots over all atoms (the measure behind ``|p|`` in the paper)."""
        return sum(a.arity for a in self.atoms)

    def relations(self) -> FrozenSet[str]:
        """Relation names used by the body."""
        return frozenset(a.relation for a in self.atoms)

    def structural_fingerprint(self) -> str:
        """A stable, canonical key for this query's structure.

        Independent of object identity, atom ordering, and Python's
        per-process hash seed (the body is serialized in sorted order and
        digested), so it is usable as a plan-cache key:

        >>> a = ConjunctiveQuery(["?x"], [Atom("R", ("?x", "?y")), Atom("S", ("?y",))])
        >>> b = ConjunctiveQuery(["?x"], [Atom("S", ("?y",)), Atom("R", ("?x", "?y"))])
        >>> a.structural_fingerprint() == b.structural_fingerprint()
        True
        """
        if self._fingerprint is None:
            import hashlib

            payload = "cq|%s|%s" % (
                ",".join(repr(v) for v in self.free_variables),
                ";".join(repr(a) for a in sorted(self.atoms)),
            )
            self._fingerprint = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def boolean(self) -> "ConjunctiveQuery":
        """This query with all variables projected away (``Ans()``)."""
        return ConjunctiveQuery((), self.atoms)

    def full(self) -> "ConjunctiveQuery":
        """This query with *every* body variable free (projection removed).

        This is ``q_{T'}`` as used in the WDPT semantics, where homomorphisms
        must be total on the subtree's variables.
        """
        return ConjunctiveQuery(sorted(self.variables()), self.atoms)

    def with_free_variables(self, frees: Iterable[object]) -> "ConjunctiveQuery":
        """Same body with a different free-variable tuple."""
        return ConjunctiveQuery(frees, self.atoms)

    def rename(self, renaming: TMapping[Variable, Variable]) -> "ConjunctiveQuery":
        """Apply a variable renaming to body and head.

        The renaming must keep the free variables distinct (otherwise a
        :class:`~repro.exceptions.SchemaError` is raised).
        """
        new_atoms = [a.rename(renaming) for a in self.atoms]
        new_frees = [renaming.get(v, v) for v in self.free_variables]
        return ConjunctiveQuery(new_frees, new_atoms)

    def substitute(self, assignment: TMapping[Variable, Term]) -> "ConjunctiveQuery":
        """Instantiate variables (free variables hit by the assignment are
        dropped from the head; the body may become partially ground)."""
        new_atoms = [a.substitute(assignment) for a in self.atoms]
        new_frees = [v for v in self.free_variables if v not in assignment]
        return ConjunctiveQuery(new_frees, new_atoms)

    def freshen(self, suffix: Optional[str] = None) -> "ConjunctiveQuery":
        """Rename every variable apart (``x`` → ``x_<suffix>``)."""
        if suffix is None:
            suffix = "f"
        renaming = {v: Variable("%s_%s" % (v.name, suffix)) for v in self.variables()}
        return self.rename(renaming)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and other._hash == self._hash
            and other.free_variables == self.free_variables
            and other.atoms == self.atoms
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self.free_variables)
        body = ", ".join(repr(a) for a in sorted(self.atoms))
        return "Ans(%s) ← %s" % (head, body)


def cq(free_variables: Iterable[object], atoms: Iterable[Atom]) -> ConjunctiveQuery:
    """Shorthand constructor for :class:`ConjunctiveQuery`."""
    return ConjunctiveQuery(free_variables, atoms)


def _as_variable(value: object, role: str) -> Variable:
    t = term(value)
    if not isinstance(t, Variable):
        raise SchemaError("%s must be a variable, got %r" % (role, value))
    return t


_fresh_counter = count()


def fresh_variable(prefix: str = "v") -> Variable:
    """A globally fresh variable (``prefix__<n>``)."""
    return Variable("%s__%d" % (prefix, next(_fresh_counter)))
