"""Partial mappings and the subsumption order ``⊑``.

The answers of CQs and WDPTs in this paper are *partial mappings*
``h : X → U`` — assignments of constants to a finite subset of the
variables.  Two orders structure the answer space (Section 2):

* ``h ⊑ h'`` (*h is subsumed by h'*): ``dom(h) ⊆ dom(h')`` and the two agree
  on ``dom(h)``;
* ``h ⊏ h'``: ``h ⊑ h'`` and not ``h' ⊑ h`` (with ``h ⊑ h'`` this reduces to
  ``dom(h) ⊊ dom(h')``).

:class:`Mapping` is an immutable, hashable wrapper around a ``dict`` from
:class:`~repro.core.terms.Variable` to :class:`~repro.core.terms.Constant`,
with the order operations, restriction, compatible union, and helpers for
selecting the maximal elements of a set of mappings — the operation at the
heart of WDPT semantics (Definition 2).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping as TMapping,
    Optional,
    Set,
    Tuple,
)

from .terms import Constant, Term, Variable, term


class Mapping:
    """An immutable partial mapping from variables to constants.

    Construction accepts any mapping-like of variable → constant; plain
    Python values are coerced with :func:`repro.core.terms.term` (so keys
    may be ``"?x"`` strings and values plain constants payloads).

    >>> h = Mapping({"?x": "Swim", "?y": "Caribou"})
    >>> h["?x"]
    'Swim'
    >>> h.restrict([Variable("x")]).domain() == frozenset({Variable("x")})
    True
    """

    __slots__ = ("_assignment", "_hash")

    def __init__(self, assignment: Optional[TMapping] = None):
        coerced: Dict[Variable, Constant] = {}
        if assignment:
            for key, value in assignment.items():
                var = term(key)
                val = term(value)
                if not isinstance(var, Variable):
                    raise TypeError("mapping keys must be variables, got %r" % (key,))
                if not isinstance(val, Constant):
                    raise TypeError("mapping values must be constants, got %r" % (value,))
                coerced[var] = val
        self._assignment = coerced
        self._hash = hash(frozenset(coerced.items()))

    @classmethod
    def from_trusted(cls, assignment: Dict["Variable", "Constant"]) -> "Mapping":
        """Wrap an already-validated ``Variable → Constant`` dict without
        per-item coercion.  The caller must not mutate ``assignment``
        afterwards — the boundary converters of :mod:`repro.relalg` build
        a fresh dict per row and hand over ownership."""
        self = cls.__new__(cls)
        self._assignment = assignment
        self._hash = hash(frozenset(assignment.items()))
        return self

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def domain(self) -> FrozenSet[Variable]:
        """The set of variables on which the mapping is defined."""
        return frozenset(self._assignment)

    def items(self) -> Iterator[Tuple[Variable, Constant]]:
        return iter(self._assignment.items())

    def get(self, var: object, default: Optional[Constant] = None) -> Optional[Constant]:
        key = term(var)
        if not isinstance(key, Variable):
            raise TypeError("mapping keys must be variables, got %r" % (var,))
        return self._assignment.get(key, default)

    def __getitem__(self, var: object) -> Constant:
        key = term(var)
        if not isinstance(key, Variable):
            raise TypeError("mapping keys must be variables, got %r" % (var,))
        return self._assignment[key]

    def __contains__(self, var: object) -> bool:
        key = term(var)
        return isinstance(key, Variable) and key in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._assignment)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Mapping) and other._assignment == self._assignment

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            "%r↦%r" % (v, c) for v, c in sorted(self._assignment.items(), key=lambda kv: kv[0].name)
        )
        return "{%s}" % inner

    def as_dict(self) -> Dict[Variable, Constant]:
        """A fresh plain-dict copy of the assignment."""
        return dict(self._assignment)

    # ------------------------------------------------------------------
    # Order and algebra
    # ------------------------------------------------------------------
    def subsumed_by(self, other: "Mapping") -> bool:
        """``self ⊑ other``: domain inclusion + agreement on the domain."""
        if len(self._assignment) > len(other._assignment):
            return False
        for var, val in self._assignment.items():
            if other._assignment.get(var) != val:
                return False
        return True

    def properly_subsumed_by(self, other: "Mapping") -> bool:
        """``self ⊏ other``: subsumed and strictly smaller domain."""
        return len(self._assignment) < len(other._assignment) and self.subsumed_by(other)

    def compatible(self, other: "Mapping") -> bool:
        """Do the two mappings agree on their common domain?"""
        small, large = (
            (self._assignment, other._assignment)
            if len(self._assignment) <= len(other._assignment)
            else (other._assignment, self._assignment)
        )
        for var, val in small.items():
            existing = large.get(var)
            if existing is not None and existing != val:
                return False
        return True

    def union(self, other: "Mapping") -> "Mapping":
        """Union of two *compatible* mappings.

        Raises ``ValueError`` on conflicting assignments.
        """
        if not self.compatible(other):
            raise ValueError("cannot union incompatible mappings %r and %r" % (self, other))
        merged = dict(self._assignment)
        merged.update(other._assignment)
        return Mapping(merged)

    def restrict(self, variables: Iterable[object]) -> "Mapping":
        """Restriction ``h|_V`` to the given variables (missing ones dropped)."""
        wanted = {term(v) for v in variables}
        return Mapping({v: c for v, c in self._assignment.items() if v in wanted})

    def extend(self, var: object, value: object) -> "Mapping":
        """A new mapping additionally sending ``var ↦ value``.

        Overwriting an existing binding with a *different* value raises
        ``ValueError`` (use plain construction for that).
        """
        key = term(var)
        val = term(value)
        if not isinstance(key, Variable) or not isinstance(val, Constant):
            raise TypeError("extend() needs a variable and a constant")
        existing = self._assignment.get(key)
        if existing is not None and existing != val:
            raise ValueError("extend() would overwrite %r↦%r with %r" % (key, existing, val))
        merged = dict(self._assignment)
        merged[key] = val
        return Mapping(merged)

    def apply(self, t: Term) -> Term:
        """Image of a term: variables map through ``self`` (if defined),
        constants map to themselves (footnote 3 of the paper)."""
        if isinstance(t, Variable):
            return self._assignment.get(t, t)
        return t


EMPTY_MAPPING = Mapping()


def maximal_mappings(mappings: Iterable[Mapping]) -> FrozenSet[Mapping]:
    """The ``⊑``-maximal elements of a set of mappings.

    Used both for Definition 2 (maximal homomorphisms) and for the
    maximal-mapping semantics ``p_m(D)`` of Section 3.4.

    ``h ⊑ h'`` is item-set inclusion, so this is the classical "maximal
    sets" problem.  An inverted index from single bindings ``(x, c)`` to
    the mappings containing them lets each candidate scan only the
    shortest posting list among its own bindings instead of the whole
    input — near-linear on the homomorphism sets produced by evaluation.
    """
    unique: List[Mapping] = list(set(mappings))
    if not unique:
        return frozenset()
    postings: Dict[Tuple[Variable, Constant], List[Mapping]] = {}
    max_size = 0
    for m in unique:
        max_size = max(max_size, len(m))
        for binding in m.items():
            postings.setdefault(binding, []).append(m)
    result: Set[Mapping] = set()
    for candidate in unique:
        if not candidate:
            # The empty mapping is maximal only when it is the sole element.
            if max_size == 0:
                result.add(candidate)
            continue
        shortest: Optional[List[Mapping]] = None
        for binding in candidate.items():
            posting = postings[binding]
            if shortest is None or len(posting) < len(shortest):
                shortest = posting
        assert shortest is not None
        if not any(candidate.properly_subsumed_by(m) for m in shortest):
            result.add(candidate)
    return frozenset(result)


def is_maximal_in(candidate: Mapping, mappings: Iterable[Mapping]) -> bool:
    """Is ``candidate`` ``⊑``-maximal within ``mappings``?"""
    return not any(candidate.properly_subsumed_by(m) for m in mappings)
