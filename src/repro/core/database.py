"""Compatibility home of :class:`Database` (the in-memory backend).

The implementation lives in :mod:`repro.storage.memory` since the
storage subsystem was introduced; :class:`Database` is a thin alias kept
so the historical import path — ``from repro.core.database import
Database`` — and ``isinstance`` checks keep working.  New code choosing
between backends should go through :mod:`repro.storage` (or
``Session(backend=...)``).
"""

from __future__ import annotations

from ..storage.memory import MemoryBackend


class Database(MemoryBackend):
    """A set of ground atoms with hash indexes (see
    :class:`repro.storage.memory.MemoryBackend` — this subclass only
    preserves the historical name).

    >>> from repro.core.atoms import atom
    >>> db = Database([atom("E", 1, 2), atom("E", 2, 3)])
    >>> len(db)
    2
    >>> sorted(db.match(atom("E", "?x", 3)))
    [E(2, 3)]
    """

    __slots__ = ()


__all__ = ["Database"]
