"""In-memory relational databases with hash indexes.

A database ``D`` over a schema ``σ`` is a set of ground atoms (facts).  This
module provides :class:`Database`, the evaluation substrate used by every
query engine in the library.  Lookups needed by backtracking evaluation and
by the semi-join passes of Yannakakis' algorithm are served by two indexes:

* a per-relation fact list, and
* a per-``(relation, position, value)`` inverted index.

:meth:`Database.match` answers "which facts unify with this partially
instantiated atom?" in time proportional to the smallest candidate posting
list, which is the inner loop of all evaluation algorithms here.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..exceptions import NotGroundError
from .atoms import Atom, Schema
from .terms import Constant, Variable


class Database:
    """A set of ground atoms with hash indexes.

    Parameters
    ----------
    facts:
        Initial ground atoms.  Non-ground atoms raise
        :class:`~repro.exceptions.NotGroundError`.
    schema:
        Optional explicit schema; when given, every inserted fact is checked
        against it.  When omitted, the schema is inferred incrementally.

    Examples
    --------
    >>> from repro.core.atoms import atom
    >>> db = Database([atom("E", 1, 2), atom("E", 2, 3)])
    >>> len(db)
    2
    >>> sorted(db.match(atom("E", "?x", 3)))
    [E(2, 3)]
    """

    __slots__ = ("_facts", "_by_relation", "_index", "_schema", "_adom", "_explicit_schema")

    def __init__(self, facts: Iterable[Atom] = (), schema: Optional[Schema] = None):
        self._facts: Set[Atom] = set()
        self._by_relation: Dict[str, List[Atom]] = {}
        self._index: Dict[Tuple[str, int, Constant], List[Atom]] = {}
        self._schema = schema if schema is not None else Schema()
        self._explicit_schema = schema is not None
        self._adom: Set[Constant] = set()
        for fact in facts:
            self.add(fact)

    def add(self, fact: Atom) -> bool:
        """Insert ``fact``; return ``True`` iff it was not already present."""
        if not fact.is_ground():
            raise NotGroundError("database facts must be ground, got %r" % (fact,))
        if self._explicit_schema:
            self._schema.validate_atom(fact)
        else:
            self._schema.add_relation(fact.relation, fact.arity)
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_relation.setdefault(fact.relation, []).append(fact)
        for pos, value in enumerate(fact.args):
            assert isinstance(value, Constant)
            self._index.setdefault((fact.relation, pos, value), []).append(fact)
            self._adom.add(value)
        return True

    def update(self, facts: Iterable[Atom]) -> int:
        """Insert many facts; return how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The (explicit or inferred) schema of this database."""
        return self._schema

    def facts(self, relation: Optional[str] = None) -> Tuple[Atom, ...]:
        """All facts, or the facts of one relation."""
        if relation is None:
            return tuple(self._facts)
        return tuple(self._by_relation.get(relation, ()))

    def relations(self) -> FrozenSet[str]:
        """Relation names with at least one fact."""
        return frozenset(self._by_relation)

    def active_domain(self) -> FrozenSet[Constant]:
        """All constants appearing in some fact (the active domain ``adom``)."""
        return frozenset(self._adom)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Database) and other._facts == self._facts

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:  # pragma: no cover - databases are mutable
        raise TypeError("Database objects are mutable and unhashable")

    def __repr__(self) -> str:
        return "Database(%d facts over %d relations)" % (len(self._facts), len(self._by_relation))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, pattern: Atom) -> Iterator[Atom]:
        """Yield the facts unifying with ``pattern``.

        ``pattern`` may mix constants and variables; repeated variables
        impose equality between positions.  The smallest inverted-index
        posting list among the constant positions is scanned; with no
        constants the relation's full fact list is scanned.
        """
        candidates = self._candidates(pattern)
        repeated = _repeated_positions(pattern)
        for fact in candidates:
            if _fact_matches(pattern, fact, repeated):
                yield fact

    def match_count(self, pattern: Atom) -> int:
        """Number of facts matching ``pattern`` (see :meth:`match`)."""
        return sum(1 for _ in self.match(pattern))

    def _candidates(self, pattern: Atom) -> Iterable[Atom]:
        """Smallest available posting list of facts that might match."""
        if pattern.relation not in self._by_relation:
            return ()
        best: Optional[List[Atom]] = None
        for pos, value in enumerate(pattern.args):
            if isinstance(value, Constant):
                posting = self._index.get((pattern.relation, pos, value))
                if posting is None:
                    return ()
                if best is None or len(posting) < len(best):
                    best = posting
        if best is None:
            best = self._by_relation[pattern.relation]
        return best

    def copy(self) -> "Database":
        """An independent copy sharing no mutable state."""
        clone = Database()
        clone.update(self._facts)
        return clone


def _repeated_positions(pattern: Atom) -> Tuple[Tuple[int, ...], ...]:
    """Groups of argument positions bound to the same variable (size ≥ 2)."""
    groups: Dict[Variable, List[int]] = {}
    for pos, value in enumerate(pattern.args):
        if isinstance(value, Variable):
            groups.setdefault(value, []).append(pos)
    return tuple(tuple(ps) for ps in groups.values() if len(ps) > 1)


def _fact_matches(
    pattern: Atom, fact: Atom, repeated: Tuple[Tuple[int, ...], ...]
) -> bool:
    if pattern.relation != fact.relation or pattern.arity != fact.arity:
        return False
    for p_arg, f_arg in zip(pattern.args, fact.args):
        if isinstance(p_arg, Constant) and p_arg != f_arg:
            return False
    for positions in repeated:
        first = fact.args[positions[0]]
        if any(fact.args[p] != first for p in positions[1:]):
            return False
    return True
