"""Plain-text database I/O.

Two formats cover the common interchange cases:

* **Facts format** (``.facts``): one fact per line, ``relation(arg, …)``
  with quoted strings where needed — exactly the ``repr`` this library
  prints, so output is round-trippable.
* **TSV directory**: one tab-separated file per relation (filename =
  relation name), one tuple per line — the classic Datalog/souffle layout.

Values are kept as strings unless they look like integers (all-digit
tokens become ``int``), which matches how the synthetic workloads are
built.
"""

from __future__ import annotations

import os
import re
from typing import List

from ..exceptions import ReproError
from .atoms import Atom
from .database import Database
from .terms import Constant

_FACT_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\((.*)\)\s*$")
_ARG_RE = re.compile(r"""\s*(?:'([^']*)'|"([^"]*)"|([^,()'"]+))\s*(?:,|$)""")


def _parse_value(token: str) -> object:
    token = token.strip()
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    return token


def parse_fact(line: str) -> Atom:
    """Parse one ``relation(arg, …)`` line into a ground atom."""
    m = _FACT_RE.match(line)
    if m is None:
        raise ReproError("cannot parse fact %r" % (line,))
    relation, body = m.group(1), m.group(2)
    args: List[object] = []
    pos = 0
    while pos < len(body):
        arg = _ARG_RE.match(body, pos)
        if arg is None:
            raise ReproError("cannot parse arguments of %r" % (line,))
        quoted_s, quoted_d, bare = arg.group(1), arg.group(2), arg.group(3)
        if quoted_s is not None:
            args.append(quoted_s)
        elif quoted_d is not None:
            args.append(quoted_d)
        else:
            args.append(_parse_value(bare))
        pos = arg.end()
    if not args:
        raise ReproError("fact %r has no arguments" % (line,))
    return Atom(relation, args)


def format_fact(fact: Atom) -> str:
    """Inverse of :func:`parse_fact` (for ground atoms)."""
    parts = []
    for t in fact.args:
        assert isinstance(t, Constant)
        value = t.value
        if isinstance(value, int):
            parts.append(str(value))
        else:
            parts.append("'%s'" % value)
    return "%s(%s)" % (fact.relation, ", ".join(parts))


def load_facts(path: str) -> Database:
    """Load a ``.facts`` file (``#`` comments and blank lines skipped)."""
    db = Database()
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                db.add(parse_fact(stripped))
            except ReproError as exc:
                raise ReproError("%s:%d: %s" % (path, lineno, exc)) from None
    return db


def save_facts(db: Database, path: str) -> None:
    """Write a database in facts format (sorted, deterministic)."""
    with open(path, "w") as handle:
        for fact in sorted(db.facts()):
            handle.write(format_fact(fact) + "\n")


def load_tsv_directory(directory: str) -> Database:
    """Load every ``*.tsv`` file in ``directory`` as a relation."""
    db = Database()
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".tsv"):
            continue
        relation = name[: -len(".tsv")]
        with open(os.path.join(directory, name)) as handle:
            for lineno, line in enumerate(handle, 1):
                stripped = line.rstrip("\n")
                if not stripped or stripped.startswith("#"):
                    continue
                values = [_parse_value(v) for v in stripped.split("\t")]
                db.add(Atom(relation, values))
    return db


def save_tsv_directory(db: Database, directory: str) -> None:
    """Write one ``relation.tsv`` per relation."""
    os.makedirs(directory, exist_ok=True)
    for relation in sorted(db.relations()):
        path = os.path.join(directory, relation + ".tsv")
        with open(path, "w") as handle:
            for fact in sorted(db.facts(relation)):
                handle.write(
                    "\t".join(str(t.value) for t in fact.args) + "\n"  # type: ignore[union-attr]
                )
