"""Columnar relation kernels: the set-oriented substrate of the
evaluation stack (ROADMAP item 2).

:mod:`repro.relalg.relation` defines the :class:`Relation`
representation and the kernels (``scan``/``semijoin``/``hash_join``/
``project``/``dedup``); :mod:`repro.relalg.config` resolves which
execution path — columnar, legacy Mapping, or whole-tree SQL pushdown —
serves a given query (``REPRO_KERNELS``).
"""

from .config import (
    KERNEL_COLUMNAR,
    KERNEL_LEGACY,
    KERNEL_SQL,
    KERNELS_ENV,
    MODE_AUTO,
    MODE_COLUMNAR,
    MODE_LEGACY,
    choose_kernel,
    default_kernel,
    force_kernels,
    kernel_mode,
)
from .relation import (
    Relation,
    dedup,
    from_mappings,
    hash_join,
    project,
    scan,
    semijoin,
    to_mappings,
)

__all__ = [
    "Relation",
    "scan",
    "semijoin",
    "hash_join",
    "project",
    "dedup",
    "from_mappings",
    "to_mappings",
    "choose_kernel",
    "default_kernel",
    "force_kernels",
    "kernel_mode",
    "KERNELS_ENV",
    "KERNEL_SQL",
    "KERNEL_COLUMNAR",
    "KERNEL_LEGACY",
    "MODE_AUTO",
    "MODE_COLUMNAR",
    "MODE_LEGACY",
]
