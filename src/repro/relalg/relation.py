"""Columnar relations and set-oriented kernels.

The evaluation stack's inner loops — Yannakakis' semi-join sweeps, the
join/projection phase, the per-node extension steps of the WDPT
evaluators — operate on *relations over variables*: sets of bindings of
a fixed variable set.  The historical representation is one immutable
:class:`~repro.core.mappings.Mapping` per binding, which re-derives the
shared-variable layout of every operation from row contents and pays a
hash + dict per row per operation.

A :class:`Relation` instead carries an explicit **schema** — a tuple of
variables, fixed at creation — and its bindings as plain value tuples
aligned with that schema.  The kernels below (:func:`scan`,
:func:`semijoin`, :func:`hash_join`, :func:`project`, :func:`dedup`)
resolve variable positions against the schemas **once per call** (i.e.
once per join-tree edge, not once per row) and then run tight loops over
the tuple arrays.  Conversion to and from ``Mapping`` happens only at
API boundaries (:func:`from_mappings` / :func:`to_mappings`).

Kernel semantics match the legacy Mapping path exactly, including the
boundary cases the parity suite pins down:

* a semi-join against an **empty** right side is empty, even when the
  two schemas share no variable;
* a semi-join with **no shared variables** against a non-empty right
  side keeps the left side unchanged;
* relations over the empty schema are Boolean: one zero-length row for
  *true*, no rows for *false*.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple,
)

from ..core.atoms import Atom
from ..core.mappings import Mapping
from ..core.terms import Constant, Variable

#: One binding: constants aligned with the owning relation's schema.
Row = Tuple[Constant, ...]


class Relation:
    """A set of bindings of a fixed variable tuple.

    ``schema`` orders the variables; ``rows`` holds one constant tuple
    per binding, aligned with the schema.  Rows are duplicate-free by
    construction in every kernel below.  The positional index
    (variable → column) is computed once at construction and shared by
    every kernel invocation against this relation.
    """

    __slots__ = ("schema", "rows", "index")

    def __init__(self, schema: Sequence[Variable], rows: Iterable[Row] = ()):
        self.schema: Tuple[Variable, ...] = tuple(schema)
        self.rows: List[Row] = list(rows)
        self.index: Dict[Variable, int] = {v: i for i, v in enumerate(self.schema)}

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __repr__(self) -> str:
        return "Relation(%s, %d rows)" % (
            "(%s)" % ", ".join(repr(v) for v in self.schema),
            len(self.rows),
        )


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------
def scan(pattern: Atom, db) -> Relation:
    """The relation of ``pattern`` over ``db``: the variable bindings of
    its matching facts, schema sorted by variable repr (the same order
    the SQL pushdown uses, so layouts agree across paths)."""
    schema = sorted(pattern.variables(), key=repr)
    if not schema:
        # Ground pattern: Boolean relation (all matches project to ()).
        for _ in db.match(pattern):
            return Relation((), [()])
        return Relation((), [])
    positions = [
        next(i for i, arg in enumerate(pattern.args) if arg == v) for v in schema
    ]
    rows: List[Row] = []
    for fact in db.match(pattern):
        args = fact.args
        rows.append(tuple(args[i] for i in positions))
    # Distinct facts matching a pattern always differ at some variable
    # position, so the projection is already duplicate-free.
    return Relation(schema, rows)


def semijoin(left: Relation, right: Relation) -> Relation:
    """``left ⋉ right`` on the schemas' common variables (legacy edge
    semantics: empty right ⇒ empty result; no shared variables against a
    non-empty right ⇒ ``left`` unchanged)."""
    if not right.rows:
        return Relation(left.schema, [])
    shared = [v for v in left.schema if v in right.index]
    if not shared:
        return left
    if not left.rows:
        return Relation(left.schema, [])
    if len(shared) == 1:
        li = left.index[shared[0]]
        ri = right.index[shared[0]]
        keys: Set = {row[ri] for row in right.rows}
        return Relation(left.schema, [row for row in left.rows if row[li] in keys])
    lpos = [left.index[v] for v in shared]
    rpos = [right.index[v] for v in shared]
    key_set: Set[Row] = {tuple(row[i] for i in rpos) for row in right.rows}
    return Relation(
        left.schema,
        [row for row in left.rows if tuple(row[i] for i in lpos) in key_set],
    )


def hash_join(left: Relation, right: Relation) -> Relation:
    """Natural join; output schema is ``left.schema`` followed by the
    right-only variables.  The join of duplicate-free inputs is
    duplicate-free (a result row determines both input rows), so no
    dedup pass is needed."""
    shared = [v for v in left.schema if v in right.index]
    extra = [(v, right.index[v]) for v in right.schema if v not in left.index]
    schema = left.schema + tuple(v for v, _ in extra)
    if not left.rows or not right.rows:
        return Relation(schema, [])
    extra_pos = [i for _, i in extra]
    rpos = [right.index[v] for v in shared]
    buckets: Dict[Row, List[Row]] = {}
    for row in right.rows:
        key = tuple(row[i] for i in rpos)
        buckets.setdefault(key, []).append(tuple(row[i] for i in extra_pos))
    lpos = [left.index[v] for v in shared]
    rows: List[Row] = []
    for row in left.rows:
        matches = buckets.get(tuple(row[i] for i in lpos))
        if matches:
            rows.extend(row + ext for ext in matches)
    return Relation(schema, rows)


def project(rel: Relation, keep: Iterable[Variable]) -> Relation:
    """Projection onto ``keep`` (missing variables dropped, like
    ``Mapping.restrict``), with duplicate elimination."""
    wanted = keep if isinstance(keep, (set, frozenset)) else set(keep)
    columns = [v for v in rel.schema if v in wanted]
    if len(columns) == len(rel.schema):
        return rel
    pos = [rel.index[v] for v in columns]
    seen: Set[Row] = {tuple(row[i] for i in pos) for row in rel.rows}
    return Relation(tuple(columns), seen)


def dedup(rel: Relation) -> Relation:
    """The relation with duplicate rows removed (idempotent; the other
    kernels already produce duplicate-free output)."""
    return Relation(rel.schema, set(rel.rows))


# ---------------------------------------------------------------------------
# Mapping boundary
# ---------------------------------------------------------------------------
def from_mappings(mappings: Iterable[Mapping], schema: Sequence[Variable]) -> Relation:
    """Pack mappings (each total on ``schema``) into a relation."""
    ordered = tuple(schema)
    return Relation(ordered, {tuple(m[v] for v in ordered) for m in mappings})


def to_mappings(rel: Relation) -> FrozenSet[Mapping]:
    """Unpack a relation into the API-boundary ``Mapping`` set."""
    schema = rel.schema
    return frozenset(
        Mapping.from_trusted(dict(zip(schema, row))) for row in rel.rows
    )
