"""Kernel selection for the relational-algebra layer.

Three execution paths implement the same relational operations:

* ``columnar`` — the set-oriented kernels of
  :mod:`repro.relalg.relation`: explicit variable schemas, tuple rows,
  shared-variable layouts computed once per join-tree edge;
* ``legacy`` — the historical tuple-at-a-time path over immutable
  :class:`~repro.core.mappings.Mapping` objects;
* ``sql`` — the whole-tree SQL pushdown of
  :meth:`repro.storage.sqlite.SQLiteBackend.sql_yannakakis` (only
  available when the database is SQLite-backed);
* ``dist`` — the distributed shard program of :mod:`repro.dist` (only
  available when the database is a
  :class:`~repro.dist.backend.ShardedBackend`): shard-local columnar
  semi-join passes with bounded exchange between join-tree levels.

The **mode** is user-facing policy, read from the ``REPRO_KERNELS``
environment variable (or forced programmatically with
:func:`force_kernels`):

* ``auto`` (default) — the backend's native whole-tree path when it has
  one (``dist`` on a sharded backend, ``sql`` on SQLite) and no worker
  pool is installed, otherwise the columnar kernels;
* ``columnar`` — always the columnar Python kernels (even on SQLite or
  a sharded backend — the coordinator's mirror serves the scans);
* ``legacy`` — always the historical Mapping path.

The **kernel** is the resolved per-execution choice (``dist`` / ``sql``
/ ``columnar`` / ``legacy``), computed by :func:`choose_kernel` from the
mode plus the database's capabilities; it is recorded in plans, traces,
and the obslog so operators can see which path served a query.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Environment variable naming the kernel mode.
KERNELS_ENV = "REPRO_KERNELS"

#: User-facing modes.
MODE_AUTO = "auto"
MODE_COLUMNAR = "columnar"
MODE_LEGACY = "legacy"
MODES = (MODE_AUTO, MODE_COLUMNAR, MODE_LEGACY)

#: Resolved per-execution kernels.
KERNEL_SQL = "sql"
KERNEL_COLUMNAR = "columnar"
KERNEL_LEGACY = "legacy"
KERNEL_DIST = "dist"

#: Programmatic override (tests, benchmarks); ``None`` defers to the env.
_forced: Optional[str] = None


def kernel_mode() -> str:
    """The active kernel mode: the :func:`force_kernels` override when
    one is installed, else ``REPRO_KERNELS``, else ``auto``."""
    if _forced is not None:
        return _forced
    raw = os.environ.get(KERNELS_ENV, MODE_AUTO).strip().lower() or MODE_AUTO
    if raw not in MODES:
        raise ValueError(
            "%s=%r is not a kernel mode (expected one of %s)"
            % (KERNELS_ENV, raw, ", ".join(MODES))
        )
    return raw


@contextmanager
def force_kernels(mode: str) -> Iterator[None]:
    """Force the kernel mode for the dynamic extent of the block,
    overriding ``REPRO_KERNELS`` — the parity tests and the kernel
    microbenchmarks pin each path with this."""
    if mode not in MODES:
        raise ValueError("unknown kernel mode %r (expected one of %s)" % (mode, ", ".join(MODES)))
    global _forced
    previous = _forced
    _forced = mode
    try:
        yield
    finally:
        _forced = previous


def choose_kernel(db: object, pool: object = None) -> str:
    """Resolve the mode against the database's capabilities.

    The native whole-tree paths are only chosen in ``auto`` mode and
    with no worker pool installed (the level-parallel sweeps are a
    Python-side feature): ``dist`` when the backend advertises
    :attr:`supports_dist_yannakakis` (it already owns its own process
    parallelism), else ``sql`` when it advertises
    :attr:`supports_sql_yannakakis`.
    """
    mode = kernel_mode()
    if mode == MODE_LEGACY:
        return KERNEL_LEGACY
    if mode == MODE_COLUMNAR:
        return KERNEL_COLUMNAR
    if pool is None and getattr(db, "supports_dist_yannakakis", False):
        return KERNEL_DIST
    if pool is None and getattr(db, "supports_sql_yannakakis", False):
        return KERNEL_SQL
    return KERNEL_COLUMNAR


def resolve_kernel(db: object, pool: object = None, preferred: Optional[str] = None) -> str:
    """:func:`choose_kernel`, with an optional *advisory* preference.

    ``preferred`` (from a :class:`~repro.planner.plan.QueryPlan` whose
    planner consulted the query-stats history) is honored only when it is
    feasible here and now: the mode must be ``auto`` (explicit modes are
    user policy and always win), and ``sql``/``dist`` additionally need
    a backend that supports the corresponding whole-tree path and no
    installed worker pool — exactly the conditions under which ``auto``
    itself would allow them.
    Infeasible or unknown preferences fall back to :func:`choose_kernel`.
    """
    fallback = choose_kernel(db, pool)
    if preferred is None or preferred == fallback:
        return fallback
    if kernel_mode() != MODE_AUTO:
        return fallback
    if preferred in (KERNEL_COLUMNAR, KERNEL_LEGACY):
        return preferred
    if (
        preferred == KERNEL_SQL
        and pool is None
        and getattr(db, "supports_sql_yannakakis", False)
    ):
        return preferred
    if (
        preferred == KERNEL_DIST
        and pool is None
        and getattr(db, "supports_dist_yannakakis", False)
    ):
        return preferred
    return fallback


def default_kernel(db: object = None) -> str:
    """The kernel a plain (pool-less) execution against ``db`` would use
    right now — what EXPLAIN and the obslog stamp on plans."""
    return choose_kernel(db, None)
