"""Lemma 1 normal-form transformations of WDPTs (Section 5.1).

The proof of Lemma 1 restructures a WDPT without changing it up to
subsumption-equivalence:

1. **Prune** branches that never introduce a free variable: keep exactly
   the nodes lying on a path from the root to some node that introduces a
   free variable.  Projections of maximal homomorphisms are unaffected
   (pruned branches only bind existential variables), so the pruned tree
   is ``≡ₛ``-equivalent to the original.
2. **Merge chains**: a node with no newly-introduced free variable and a
   single child is merged with that child (labels united).  The merged
   tree is ``≡ₛ``-equivalent as well — this is the step that needs the CQ
   class to be closed under subqueries, motivating ``HW'(k)``.

The composition :func:`lemma1_normal_form` linearly bounds the number of
nodes by the number of free-variable-introducing nodes, and is the
constructive backbone of the Theorem 13 membership search and the
Theorem 14 approximation search.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .subtrees import new_variables_at
from .tree import ROOT, PatternTree
from .wdpt import WDPT


def introduces_free_variable(p: WDPT, node: int) -> bool:
    """Does ``node`` mention a free variable absent from its parent?"""
    frees = frozenset(p.free_variables)
    return bool(new_variables_at(p, node) & frees)


def prune_non_free_branches(p: WDPT) -> WDPT:
    """Step 1 of Lemma 1: drop every node not on a root-path to a
    free-variable-introducing node.  The root always stays."""
    keep: Set[int] = {ROOT}
    for node in p.tree.nodes():
        if introduces_free_variable(p, node):
            keep.update(p.tree.path_to_root(node))
    return _restrict_to_nodes(p, keep)


def merge_chains(p: WDPT) -> WDPT:
    """Step 2 of Lemma 1: repeatedly merge a single-child node that
    introduces no free variable into its child."""
    # Work on mutable parallel arrays; node ids are re-packed at the end.
    parents: Dict[int, int] = {
        n: p.tree.parent(n) for n in p.tree.nodes() if n != ROOT
    }  # type: ignore[misc]
    labels: Dict[int, Set] = {n: set(p.labels[n]) for n in p.tree.nodes()}
    alive: Set[int] = set(p.tree.nodes())

    def children_of(n: int) -> List[int]:
        return [c for c in alive if c != ROOT and parents[c] == n]

    changed = True
    while changed:
        changed = False
        for n in sorted(alive):
            if n == ROOT:
                # The root may also be merged with an only child when it
                # introduces no free variable?  No: the root anchors the
                # tree; Lemma 1 merges non-root chain nodes only.
                continue
            kids = children_of(n)
            if len(kids) != 1:
                continue
            if _introduces_free(p, labels[n], n, parents, labels, alive):
                continue
            child = kids[0]
            labels[child] |= labels[n]
            parents[child] = parents[n]
            alive.discard(n)
            del labels[n]
            changed = True
            break
    return _rebuild(p, alive, parents, labels)


def lemma1_normal_form(p: WDPT) -> WDPT:
    """Prune then merge — the Lemma 1 normal form, ``≡ₛ``-equivalent to
    ``p`` with at most ``2·|free-introducing nodes| + 1`` nodes."""
    return merge_chains(prune_non_free_branches(p))


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def _introduces_free(
    p: WDPT,
    label: Set,
    node: int,
    parents: Dict[int, int],
    labels: Dict[int, Set],
    alive: Set[int],
) -> bool:
    frees = frozenset(p.free_variables)
    my_vars = {v for a in label for v in a.variables()}
    parent = parents.get(node)
    if parent is None:
        return bool(my_vars & frees)
    parent_vars = {v for a in labels[parent] for v in a.variables()}
    return bool((my_vars - parent_vars) & frees)


def _restrict_to_nodes(p: WDPT, keep: Set[int]) -> WDPT:
    """The WDPT induced by a rooted-subtree node set ``keep``.

    Free variables not occurring in the kept nodes are dropped from the
    projection tuple (they cannot occur: pruning only removes nodes that
    introduce no free variable, but the guard keeps the API total).
    """
    old_order = sorted(keep)
    new_id = {old: i for i, old in enumerate(old_order)}
    parents: List[int] = []
    for old in old_order[1:]:
        parent = p.tree.parent(old)
        assert parent is not None and parent in keep
        parents.append(new_id[parent])
    labels = [p.labels[old] for old in old_order]
    kept_vars = {v for label in labels for a in label for v in a.variables()}
    frees = [v for v in p.free_variables if v in kept_vars]
    return WDPT(PatternTree(parents), labels, frees)


def _rebuild(
    p: WDPT, alive: Set[int], parents: Dict[int, int], labels: Dict[int, Set]
) -> WDPT:
    old_order = sorted(alive)
    new_id = {old: i for i, old in enumerate(old_order)}
    new_parents: List[int] = []
    for old in old_order[1:]:
        parent = parents[old]
        while parent not in alive:  # pragma: no cover - merges repoint parents
            parent = parents[parent]
        new_parents.append(new_id[parent])
    new_labels = [frozenset(labels[old]) for old in old_order]
    kept_vars = {v for label in new_labels for a in label for v in a.variables()}
    frees = [v for v in p.free_variables if v in kept_vars]
    return WDPT(PatternTree(new_parents), new_labels, frees)
