"""Rooted-subtree machinery for WDPT algorithms.

Three operations recur throughout Sections 3–6 of the paper:

* enumerating all rooted subtrees (semantics, subsumption, ``φ_cq``);
* the **minimal** rooted subtree containing a given set of variables
  (Theorem 8's partial-evaluation algorithm, Theorem 6's step 1);
* the **maximal** rooted subtree containing no free variables beyond a
  given set (Theorem 6's ``T''``).

Well-designedness makes both extremal subtrees unique: the nodes mentioning
a variable form a connected subgraph, so each variable has a unique
*top node* (the closest-to-root node mentioning it).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Set

from ..core.terms import Variable
from .tree import ROOT
from .wdpt import WDPT


def top_node_of_variable(p: WDPT, v: Variable) -> int:
    """The unique node mentioning ``v`` closest to the root.

    Raises ``KeyError`` if ``v`` does not occur in ``p``.
    """
    holders = [n for n in p.tree.nodes() if v in p.node_variables(n)]
    if not holders:
        raise KeyError("variable %r does not occur in the pattern tree" % (v,))
    # Connectedness ⇒ the minimum-depth holder is unique and an ancestor of
    # all others; node ids are topologically ordered so the smallest id of
    # minimal depth is the top node.
    return min(holders, key=lambda n: (p.tree.depth(n), n))


def minimal_subtree_containing(p: WDPT, variables: Iterable[Variable]) -> FrozenSet[int]:
    """The minimal rooted subtree of ``p`` whose variable set covers
    ``variables``: the union of root-paths to each variable's top node."""
    nodes: Set[int] = {ROOT}
    for v in variables:
        nodes.update(p.tree.path_to_root(top_node_of_variable(p, v)))
    return frozenset(nodes)


def maximal_subtree_within_free(
    p: WDPT, allowed_free: FrozenSet[Variable]
) -> FrozenSet[int]:
    """The maximal rooted subtree whose nodes mention no free variable
    outside ``allowed_free`` (the paper's ``T''`` in Theorem 6)."""
    frees = frozenset(p.free_variables)
    nodes: Set[int] = set()

    def admissible(n: int) -> bool:
        return (p.node_variables(n) & frees) <= allowed_free

    if not admissible(ROOT):
        # Even the root mentions a forbidden free variable; the maximal
        # admissible subtree is empty, which callers treat as failure.
        return frozenset()
    stack = [ROOT]
    while stack:
        n = stack.pop()
        nodes.add(n)
        for child in p.tree.children(n):
            if admissible(child):
                stack.append(child)
    return frozenset(nodes)


def rooted_subtrees(p: WDPT) -> Iterator[FrozenSet[int]]:
    """All rooted subtrees of ``p`` (delegates to the tree)."""
    return p.tree.rooted_subtrees()


def subtree_free_variables(p: WDPT, nodes: Iterable[int]) -> FrozenSet[Variable]:
    """Free variables of ``p`` occurring in the given nodes."""
    vs: Set[Variable] = set()
    for n in nodes:
        vs |= p.node_variables(n)
    return vs & frozenset(p.free_variables)


def new_variables_at(p: WDPT, node: int) -> FrozenSet[Variable]:
    """Variables introduced at ``node`` (present there, absent from the
    parent — by well-designedness, absent from all proper ancestors)."""
    parent = p.tree.parent(node)
    if parent is None:
        return p.node_variables(node)
    return p.node_variables(node) - p.node_variables(parent)


def interface_to_parent(p: WDPT, node: int) -> FrozenSet[Variable]:
    """``vars(node) ∩ vars(parent)`` (empty for the root).

    By well-designedness this set separates the variables of ``node``'s
    subtree from the rest of the tree.
    """
    parent = p.tree.parent(node)
    if parent is None:
        return frozenset()
    return p.node_variables(node) & p.node_variables(parent)


def interface_to_children(p: WDPT, node: int) -> FrozenSet[Variable]:
    """Variables shared between ``node`` and the union of its children —
    the quantity bounded by the ``BI(c)`` condition (Section 3.2)."""
    shared: Set[Variable] = set()
    mine = p.node_variables(node)
    for child in p.tree.children(node):
        shared |= mine & p.node_variables(child)
    return frozenset(shared)
