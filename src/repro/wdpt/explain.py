"""EXPLAIN for pattern trees: which of the paper's tractability conditions
does a query satisfy, and which algorithm will therefore run?

:func:`explain` reads the full structural profile of a WDPT — per-node
treewidth, interface width, global widths, class membership for the
relevant ``k``/``c`` — and derives the paper-backed routing decisions:

* ``EVAL``: Theorem 7 (LOGCFL) if locally tractable with bounded
  interface; Theorem 4 if projection-free and locally tractable; otherwise
  the general exponential procedure (Theorem 1: Σ₂ᵖ-complete).
* ``PARTIAL-EVAL`` / ``MAX-EVAL``: Theorems 8/9 (LOGCFL) under global
  tractability; NP/DP-hard otherwise (Propositions 1/4).

The structural analysis itself lives in :mod:`repro.planner`: EXPLAIN asks
the planner for the tree's memoized :class:`~repro.planner.profile.TreeProfile`,
so the widths it prints are the same objects the evaluation algorithms
route on — profiling a query warms the cache for evaluating it, and vice
versa.  The report renders as a table and is used by the examples; it is a
diagnostics tool, not a query optimizer.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from .wdpt import WDPT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..planner.planner import Planner


class WDPTProfile:
    """Structural profile of a WDPT (see :func:`explain`).

    A thin, display-oriented view over the planner's memoized
    :class:`~repro.planner.profile.TreeProfile`.
    """

    def __init__(self, p: WDPT, planner: "Optional[Planner]" = None):
        if planner is None:
            from ..planner.planner import get_default_planner

            planner = get_default_planner()
        tp = planner.profile_wdpt(p)
        self.tree_profile = tp
        self.fingerprint = tp.fingerprint
        self.tree_size = len(p.tree)
        self.size = p.size()
        self.n_variables = len(p.variables())
        self.n_free = len(p.free_variables)
        self.projection_free = p.is_projection_free()
        self.node_treewidths: List[Optional[int]] = [
            tp.node_profile(n).treewidth for n in p.tree.nodes()
        ]
        self.node_hypertreewidths: List[Optional[int]] = [
            tp.node_profile(n).hypertreewidth for n in p.tree.nodes()
        ]
        self.interface_width = tp.interface_width
        self.node_interfaces = tp.node_interfaces()
        self.global_treewidth = tp.global_profile.treewidth
        self.global_hypertreewidth = tp.global_profile.hypertreewidth

    @property
    def local_treewidth(self) -> Optional[int]:
        widths = [w for w in self.node_treewidths if w is not None]
        if len(widths) != len(self.node_treewidths):
            return None
        return max(max(widths, default=0), 0)

    def eval_route(self) -> str:
        """Which EVAL algorithm the profile licenses."""
        if self.local_treewidth is not None and self.interface_width <= max(
            2, self.local_treewidth
        ):
            return (
                "Theorem 7 DP: ℓ-TW(%d) ∩ BI(%d) → LOGCFL"
                % (self.local_treewidth, self.interface_width)
            )
        if self.projection_free and self.local_treewidth is not None:
            return "Theorem 4: projection-free + ℓ-TW(%d) → PTIME" % self.local_treewidth
        return "general procedure (EVAL is Σ₂ᵖ-complete, Theorem 1)"

    def partial_eval_route(self) -> str:
        if self.global_treewidth is not None:
            return "Theorem 8: g-TW(%d) → LOGCFL" % max(self.global_treewidth, 1)
        return "general procedure (PARTIAL-EVAL is NP-complete, Prop. 1)"

    def as_table(self) -> str:
        from ..benchharness.reporting import format_table
        from ..relalg.config import kernel_mode

        rows = [
            ["tree nodes", self.tree_size],
            ["|p| (relational size)", self.size],
            ["variables (free)", "%d (%d)" % (self.n_variables, self.n_free)],
            ["projection-free", self.projection_free],
            ["local treewidth (max node)", _fmt(self.local_treewidth)],
            ["interface width (BI)", self.interface_width],
            ["global treewidth (g-TW)", _fmt(self.global_treewidth)],
            ["global hypertreewidth", _fmt(self.global_hypertreewidth)],
            ["fingerprint", self.fingerprint[:12]],
            ["kernel mode (REPRO_KERNELS)", kernel_mode()],
            ["EVAL route", self.eval_route()],
            ["PARTIAL/MAX-EVAL route", self.partial_eval_route()],
        ]
        return format_table(["property", "value"], rows, title="WDPT profile")

    def __repr__(self) -> str:
        return self.as_table()


def explain(p: WDPT, planner: "Optional[Planner]" = None) -> WDPTProfile:
    """Profile ``p`` against the paper's tractability conditions, through
    the (default or supplied) planner's memoized analysis.

    >>> from repro.workloads.families import figure1_wdpt
    >>> profile = explain(figure1_wdpt())
    >>> profile.interface_width
    2
    >>> profile.global_treewidth
    1
    """
    return WDPTProfile(p, planner=planner)


def _fmt(value: Optional[int]) -> str:
    return "?" if value is None else str(value)
