"""EXPLAIN for pattern trees: which of the paper's tractability conditions
does a query satisfy, and which algorithm will therefore run?

:func:`explain` computes the full structural profile of a WDPT — per-node
treewidth, interface width, global widths, class membership for the
relevant ``k``/``c`` — and derives the paper-backed routing decisions:

* ``EVAL``: Theorem 7 (LOGCFL) if locally tractable with bounded
  interface; Theorem 4 if projection-free and locally tractable; otherwise
  the general exponential procedure (Theorem 1: Σ₂ᵖ-complete).
* ``PARTIAL-EVAL`` / ``MAX-EVAL``: Theorems 8/9 (LOGCFL) under global
  tractability; NP/DP-hard otherwise (Propositions 1/4).

The report renders as a table and is used by the examples; it is a
diagnostics tool, not a query optimizer.
"""

from __future__ import annotations

from typing import List, Optional

from ..hypergraphs.hypergraph import hypergraph_of_atoms
from ..hypergraphs.hypertree import hypertreewidth_exact
from ..hypergraphs.treewidth import treewidth_exact
from ..exceptions import BudgetExceededError
from .classes import interface_width
from .subtrees import interface_to_children
from .wdpt import WDPT


class WDPTProfile:
    """Structural profile of a WDPT (see :func:`explain`)."""

    def __init__(self, p: WDPT):
        self.tree_size = len(p.tree)
        self.size = p.size()
        self.n_variables = len(p.variables())
        self.n_free = len(p.free_variables)
        self.projection_free = p.is_projection_free()
        self.node_treewidths: List[Optional[int]] = []
        self.node_hypertreewidths: List[Optional[int]] = []
        for label in p.labels:
            H = hypergraph_of_atoms(label)
            self.node_treewidths.append(_safe(lambda: treewidth_exact(H)))
            self.node_hypertreewidths.append(_safe(lambda: hypertreewidth_exact(H)))
        self.interface_width = interface_width(p)
        self.node_interfaces = [
            len(interface_to_children(p, n)) for n in p.tree.nodes()
        ]
        full = hypergraph_of_atoms(p.atoms_of(p.tree.nodes()))
        self.global_treewidth = _safe(lambda: treewidth_exact(full))
        self.global_hypertreewidth = _safe(lambda: hypertreewidth_exact(full))

    @property
    def local_treewidth(self) -> Optional[int]:
        widths = [w for w in self.node_treewidths if w is not None]
        if len(widths) != len(self.node_treewidths):
            return None
        return max(max(widths, default=0), 0)

    def eval_route(self) -> str:
        """Which EVAL algorithm the profile licenses."""
        if self.local_treewidth is not None and self.interface_width <= max(
            2, self.local_treewidth
        ):
            return (
                "Theorem 7 DP: ℓ-TW(%d) ∩ BI(%d) → LOGCFL"
                % (self.local_treewidth, self.interface_width)
            )
        if self.projection_free and self.local_treewidth is not None:
            return "Theorem 4: projection-free + ℓ-TW(%d) → PTIME" % self.local_treewidth
        return "general procedure (EVAL is Σ₂ᵖ-complete, Theorem 1)"

    def partial_eval_route(self) -> str:
        if self.global_treewidth is not None:
            return "Theorem 8: g-TW(%d) → LOGCFL" % max(self.global_treewidth, 1)
        return "general procedure (PARTIAL-EVAL is NP-complete, Prop. 1)"

    def as_table(self) -> str:
        from ..benchharness.reporting import format_table

        rows = [
            ["tree nodes", self.tree_size],
            ["|p| (relational size)", self.size],
            ["variables (free)", "%d (%d)" % (self.n_variables, self.n_free)],
            ["projection-free", self.projection_free],
            ["local treewidth (max node)", _fmt(self.local_treewidth)],
            ["interface width (BI)", self.interface_width],
            ["global treewidth (g-TW)", _fmt(self.global_treewidth)],
            ["global hypertreewidth", _fmt(self.global_hypertreewidth)],
            ["EVAL route", self.eval_route()],
            ["PARTIAL/MAX-EVAL route", self.partial_eval_route()],
        ]
        return format_table(["property", "value"], rows, title="WDPT profile")

    def __repr__(self) -> str:
        return self.as_table()


def explain(p: WDPT) -> WDPTProfile:
    """Profile ``p`` against the paper's tractability conditions.

    >>> from repro.workloads.families import figure1_wdpt
    >>> profile = explain(figure1_wdpt())
    >>> profile.interface_width
    2
    >>> profile.global_treewidth
    1
    """
    return WDPTProfile(p)


def _safe(fn):
    try:
        return fn()
    except BudgetExceededError:
        return None


def _fmt(value: Optional[int]) -> str:
    return "?" if value is None else str(value)
