"""≡ₛ-preserving rewrites: a small logical optimizer for pattern trees.

Three rewrites, each individually sound (preserving subsumption-
equivalence, hence partial and maximal answers — the semantics the
paper's Section 5 argues is the right one to preserve):

1. **Local redundancy removal** (:func:`remove_redundant_atoms`): within a
   node, drop atoms implied by the rest of the node *given the variables
   visible elsewhere* — a per-node core computation that keeps frozen the
   free variables and every variable shared with the parent or children
   (folding those would change cross-node semantics).
2. **Duplicate-branch elimination** (:func:`merge_duplicate_branches`):
   sibling subtrees that are structurally identical contribute identical
   optional extensions; keep one.
3. **Lemma 1 normal form** (re-exported from
   :mod:`repro.wdpt.transform`): prune free-variable-less branches and
   merge chains.

:func:`optimize` composes them and — under ``verify=True`` (default) —
checks ``≡ₛ`` against the input with the exact subsumption test, so a
(hypothetical) unsound rewrite could never escape silently.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..core.atoms import Atom, variables_of
from ..core.terms import Variable
from ..cqalgs.homomorphism import apply_homomorphism, query_homomorphisms
from ..exceptions import ReproError
from .subsumption import is_subsumption_equivalent
from .transform import lemma1_normal_form
from .tree import PatternTree
from .wdpt import WDPT


def remove_redundant_atoms(p: WDPT) -> WDPT:
    """Drop, per node, atoms implied by the node's remaining atoms.

    An atom ``a`` of ``λ(t)`` is redundant if ``λ(t) ∖ {a}`` maps
    homomorphically onto itself covering ``a`` while fixing every
    *pinned* variable of ``t`` — the free variables plus the variables
    shared with the parent or any child.  Folding only unpinned local
    existentials cannot change any cross-node interaction, and within the
    node it preserves the CQ up to equivalence.
    """
    new_labels: List[FrozenSet[Atom]] = []
    for node in p.tree.nodes():
        pinned = _pinned_variables(p, node)
        new_labels.append(_reduce_label(p.labels[node], pinned))
    return WDPT(p.tree, new_labels, p.free_variables)


def _pinned_variables(p: WDPT, node: int) -> FrozenSet[Variable]:
    pinned: Set[Variable] = set(p.free_variables) & set(p.node_variables(node))
    parent = p.tree.parent(node)
    if parent is not None:
        pinned |= p.node_variables(node) & p.node_variables(parent)
    for child in p.tree.children(node):
        pinned |= p.node_variables(node) & p.node_variables(child)
    return frozenset(pinned)


def _reduce_label(label: FrozenSet[Atom], pinned: FrozenSet[Variable]) -> FrozenSet[Atom]:
    atoms = set(label)
    fixed = {v: v for v in pinned}
    changed = True
    while changed and len(atoms) > 1:
        changed = False
        for a in sorted(atoms):
            rest = atoms - {a}
            if not variables_of(rest) >= (a.variables() & pinned):
                continue
            for h in query_homomorphisms(atoms, rest, fixed=fixed):
                if apply_homomorphism(atoms, h) <= rest:
                    atoms = set(rest)
                    changed = True
                    break
            if changed:
                break
    return frozenset(atoms)


def merge_duplicate_branches(p: WDPT) -> WDPT:
    """Remove sibling subtrees that duplicate each other up to renaming of
    their branch-local *existential* variables.

    Well-designedness forbids two siblings from sharing a variable absent
    from the parent, so literal duplicates cannot exist; the meaningful
    notion is isomorphism fixing the parent-shared variables.  Such a
    duplicate is only droppable when its branch-local variables are all
    existential: the two copies are then simultaneously (un)extendable
    with identical projections, so keeping one preserves ``≡ₛ``.  A copy
    introducing its own *free* variable contributes distinct answers and
    is kept.
    """
    frees = frozenset(p.free_variables)
    keep: Set[int] = set()

    def subtree_variables(node: int) -> FrozenSet[Variable]:
        out: Set[Variable] = set(p.node_variables(node))
        for c in p.tree.children(node):
            out |= subtree_variables(c)
        return frozenset(out)

    def canonize_node(node: int, renaming: Dict[Variable, Variable], counter: List[int]) -> Tuple:
        """Assign canonical names to the node's new variables in a
        name-independent order: repeatedly pick the ⊑-least atom under the
        current partial renaming (unknowns render as '*'), then name its
        new variables left to right.  One shared counter per branch keeps
        the renaming injective."""
        remaining = set(p.labels[node])
        ordered: List[Atom] = []
        while remaining:
            def key(a: Atom) -> Tuple:
                return (
                    a.relation,
                    tuple(
                        repr(renaming[t]) if isinstance(t, Variable) and t in renaming
                        else (repr(t) if not isinstance(t, Variable) else "*")
                        for t in a.args
                    ),
                )

            chosen = min(remaining, key=key)
            remaining.discard(chosen)
            for t in chosen.args:
                if isinstance(t, Variable) and t not in renaming:
                    counter[0] += 1
                    renaming[t] = Variable("__canon_%d" % counter[0])
            ordered.append(chosen.rename(renaming))
        return tuple(ordered)

    def signature(node: int, renaming: Dict[Variable, Variable], counter: List[int]) -> Tuple:
        label = canonize_node(node, renaming, counter)
        children = tuple(
            signature(c, renaming, counter) for c in p.tree.children(node)
        )
        return (label, children)

    def branch_signature(child: int, parent: int) -> Tuple:
        shared = p.node_variables(child) & p.node_variables(parent)
        renaming: Dict[Variable, Variable] = {v: v for v in shared}
        return signature(child, renaming, [0])

    def walk(node: int) -> None:
        keep.add(node)
        seen: Set[Tuple] = set()
        for child in p.tree.children(node):
            local = subtree_variables(child) - p.node_variables(node)
            if not local & frees:
                sig = branch_signature(child, node)
                if sig in seen:
                    continue
                seen.add(sig)
            walk(child)

    walk(0)
    if len(keep) == len(p.tree):
        return p
    old_order = sorted(keep)
    new_id = {old: i for i, old in enumerate(old_order)}
    parents = []
    for old in old_order[1:]:
        parent = p.tree.parent(old)
        assert parent is not None
        parents.append(new_id[parent])
    labels = [p.labels[old] for old in old_order]
    kept_vars = {v for label in labels for a in label for v in a.variables()}
    frees = [v for v in p.free_variables if v in kept_vars]
    return WDPT(PatternTree(parents), labels, frees)


def optimize(p: WDPT, verify: bool = True) -> WDPT:
    """Compose all rewrites; optionally verify ``≡ₛ`` with the original.

    >>> from repro.core.atoms import atom
    >>> from repro.wdpt.wdpt import wdpt_from_nested
    >>> p = wdpt_from_nested(
    ...     ([atom("E", "?x", "?y"), atom("E", "?x", "?u")], []),
    ...     free_variables=["?x", "?y"])
    >>> optimize(p).atom_count()   # E(x,u) folds onto E(x,y)
    1
    """
    result = lemma1_normal_form(p)
    result = merge_duplicate_branches(result)
    result = remove_redundant_atoms(result)
    if verify and not is_subsumption_equivalent(p, result):
        raise ReproError(
            "internal error: rewrite changed semantics (please report); "
            "original %r, rewritten %r" % (p, result)
        )
    return result
