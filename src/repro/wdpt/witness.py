"""Answer provenance: *why* is ``h`` an answer?

For debugging optional matching, knowing the answer set is rarely enough —
one wants the witness: which subtree matched, with which full
homomorphism, and why each unmatched branch failed.  :func:`witness`
produces exactly that, re-using the evaluation machinery:

* the witness subtree ``T*`` (node ids),
* a maximal homomorphism ``ĥ`` with ``ĥ|_x̄ = h``,
* per frontier child: the reason it is absent — ``"unsatisfiable"`` (no
  extension exists; the OPT branch truly has no data) — which is the only
  possible reason at a maximal homomorphism.

This is the constructive counterpart of the EVAL decision procedures: the
returned object *certifies* membership and can be checked independently
(:meth:`AnswerWitness.verify`).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..core.database import Database
from ..core.mappings import Mapping
from ..cqalgs.naive import satisfiable
from .evaluation import maximal_homomorphisms
from .tree import ROOT
from .wdpt import WDPT


class AnswerWitness:
    """A certificate that ``answer ∈ p(D)``.

    Attributes
    ----------
    answer:
        The answer mapping (restriction of ``homomorphism`` to ``x̄``).
    homomorphism:
        A maximal homomorphism projecting to ``answer``.
    subtree:
        The witness subtree: nodes whose variables are all bound and whose
        atoms are satisfied under ``homomorphism``.
    blocked_children:
        Frontier children (outside the subtree, parent inside) — each is
        unextendable under the homomorphism, which certifies maximality.
    """

    def __init__(
        self,
        p: WDPT,
        db: Database,
        answer: Mapping,
        homomorphism: Mapping,
        subtree: FrozenSet[int],
        blocked_children: Tuple[int, ...],
    ):
        self._p = p
        self._db = db
        self.answer = answer
        self.homomorphism = homomorphism
        self.subtree = subtree
        self.blocked_children = blocked_children

    def verify(self) -> bool:
        """Re-check the certificate from scratch (no trust in evaluation)."""
        p, db, h = self._p, self._db, self.homomorphism
        if not p.tree.is_rooted_subtree(self.subtree):
            return False
        assignment = h.as_dict()
        for node in self.subtree:
            if not p.node_variables(node) <= h.domain():
                return False
            if not all(a.substitute(assignment) in db for a in p.labels[node]):
                return False
        for child in self.blocked_children:
            shared = p.node_variables(child) & h.domain()
            if satisfiable(p.labels[child], db, h.restrict(shared)):
                return False
        # Every frontier child must be accounted for.
        frontier = {
            child
            for node in self.subtree
            for child in p.tree.children(node)
            if child not in self.subtree
        }
        if frontier != set(self.blocked_children):
            return False
        return self.answer == h.restrict(p.free_variables)

    def describe(self) -> str:
        """A human-readable account of the match."""
        lines = ["answer %r" % (self.answer,)]
        lines.append("matched nodes: %s" % sorted(self.subtree))
        for node in sorted(self.subtree):
            atoms = ", ".join(repr(a) for a in sorted(self._p.labels[node]))
            lines.append("  [%d] %s" % (node, atoms))
        for child in self.blocked_children:
            atoms = ", ".join(repr(a) for a in sorted(self._p.labels[child]))
            lines.append("  [%d] OPT failed (no data): %s" % (child, atoms))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "AnswerWitness(%r, %d nodes, %d blocked)" % (
            self.answer,
            len(self.subtree),
            len(self.blocked_children),
        )


def witness(p: WDPT, db: Database, answer: Mapping) -> Optional[AnswerWitness]:
    """A verified certificate that ``answer ∈ p(D)``, or ``None``.

    >>> from repro.core import atom, Database, Mapping
    >>> from repro.wdpt.wdpt import wdpt_from_nested
    >>> p = wdpt_from_nested(
    ...     ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
    ...     free_variables=["?x", "?y"])
    >>> db = Database([atom("A", 1)])
    >>> w = witness(p, db, Mapping({"?x": 1}))
    >>> w.subtree == frozenset({0}) and w.blocked_children == (1,)
    True
    """
    frees = p.free_variables
    for h in maximal_homomorphisms(p, db):
        if h.restrict(frees) != answer:
            continue
        subtree = _matched_subtree(p, db, h)
        frontier = tuple(
            sorted(
                child
                for node in subtree
                for child in p.tree.children(node)
                if child not in subtree
            )
        )
        candidate = AnswerWitness(p, db, answer, h, subtree, frontier)
        if candidate.verify():
            return candidate
    return None


def _matched_subtree(p: WDPT, db: Database, h: Mapping) -> FrozenSet[int]:
    """The maximal rooted subtree fully bound and satisfied under ``h``."""
    assignment = h.as_dict()
    matched = set()

    def ok(node: int) -> bool:
        return p.node_variables(node) <= h.domain() and all(
            a.substitute(assignment) in db for a in p.labels[node]
        )

    if not ok(ROOT):
        return frozenset()
    stack = [ROOT]
    matched.add(ROOT)
    while stack:
        node = stack.pop()
        for child in p.tree.children(node):
            if child not in matched and ok(child):
                matched.add(child)
                stack.append(child)
    return frozenset(matched)
