"""Partial evaluation of WDPTs (Theorem 8).

``PARTIAL-EVAL``: given ``p``, ``D`` and a partial mapping ``h``, is there
an answer ``h' ∈ p(D)`` with ``h ⊑ h'``?

The paper's algorithm (proof of Theorem 8): ``h`` extends to an answer iff
``h`` extends to *some* homomorphism of ``p`` — maximality is free, because
every homomorphism extends to a maximal one and extension preserves ``⊑``
of the projections.  So it suffices to

1. take the minimal rooted subtree ``T'`` whose variables cover
   ``dom(h)`` (LOGSPACE in the paper, a few tree walks here), and
2. decide non-emptiness of ``q̂_{T'}``, the subtree CQ with ``h``
   substituted — a CQ in ``TW(k)`` / ``HW(k)`` whenever ``p`` is globally
   tractable, hence LOGCFL by Theorems 2/3.

``method`` selects the CQ backend: ``"naive"`` backtracking or the
structure-exploiting engines.  Non-naive methods go through the planner:
the subtree's structural profile (join tree / decomposition) is computed
once per subtree *shape* and reused across candidate mappings — sound
because substituting ``h`` only removes hypergraph vertices, under which
acyclicity and treewidth are monotone.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, TYPE_CHECKING

from ..core.database import Database
from ..core.mappings import Mapping
from ..cqalgs.naive import satisfiable
from ..telemetry.resources import account_subquery
from ..telemetry.tracer import current_tracer
from .subtrees import minimal_subtree_containing
from .wdpt import WDPT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..planner.planner import Planner


def partial_eval(
    p: WDPT,
    db: Database,
    h: Mapping,
    method: str = "naive",
    planner: "Optional[Planner]" = None,
) -> bool:
    """``PARTIAL-EVAL``: is there ``h' ∈ p(D)`` with ``h ⊑ h'``?

    Answers of ``p`` are defined on subsets of ``x̄``, so a mapping using a
    non-free variable can never be extended by one.
    """
    dom = h.domain()
    if not dom <= frozenset(p.free_variables):
        return False
    if not dom <= p.variables():
        return False
    tracer = current_tracer()
    subtree = minimal_subtree_containing(p, dom)
    with tracer.span("wdpt.partial_eval", method=method) as sp:
        if tracer.enabled:
            sp.set(subtree=sorted(subtree), substituted=len(dom))
        account_subquery()
        if method == "naive":
            atoms = [a.substitute(h.as_dict()) for a in p.atoms_of(subtree)]
            return satisfiable(atoms, db)
        # Non-emptiness of the substituted subtree CQ, routed on the
        # memoized profile of its unsubstituted shape.
        if planner is None:
            from ..planner.planner import get_default_planner

            planner = get_default_planner()
        sub_profile = planner.profile_wdpt(p).subtree_profile(subtree)
        return planner.satisfiable_substituted(
            sub_profile, h.as_dict(), db, method=method
        )


def partial_answers(p: WDPT, db: Database) -> FrozenSet[Mapping]:
    """All partial answers of ``p`` over ``db`` — the downward closure of
    ``p(D)`` under restriction.  Reference-quality helper for tests."""
    from .evaluation import evaluate

    out = set()
    for answer in evaluate(p, db):
        domain = sorted(answer.domain())
        for mask in range(1 << len(domain)):
            chosen = [v for i, v in enumerate(domain) if mask >> i & 1]
            out.add(answer.restrict(chosen))
    return frozenset(out)
