"""Partial evaluation of WDPTs (Theorem 8).

``PARTIAL-EVAL``: given ``p``, ``D`` and a partial mapping ``h``, is there
an answer ``h' ∈ p(D)`` with ``h ⊑ h'``?

The paper's algorithm (proof of Theorem 8): ``h`` extends to an answer iff
``h`` extends to *some* homomorphism of ``p`` — maximality is free, because
every homomorphism extends to a maximal one and extension preserves ``⊑``
of the projections.  So it suffices to

1. take the minimal rooted subtree ``T'`` whose variables cover
   ``dom(h)`` (LOGSPACE in the paper, a few tree walks here), and
2. decide non-emptiness of ``q̂_{T'}``, the subtree CQ with ``h``
   substituted — a CQ in ``TW(k)`` / ``HW(k)`` whenever ``p`` is globally
   tractable, hence LOGCFL by Theorems 2/3.

``method`` selects the CQ backend: ``"naive"`` backtracking or the
structure-exploiting engines (``"auto"`` routes through
:mod:`repro.cqalgs.dispatch`).
"""

from __future__ import annotations

from typing import FrozenSet

from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping
from ..cqalgs.dispatch import evaluate as cq_evaluate
from ..cqalgs.naive import satisfiable
from .subtrees import minimal_subtree_containing
from .wdpt import WDPT


def partial_eval(p: WDPT, db: Database, h: Mapping, method: str = "naive") -> bool:
    """``PARTIAL-EVAL``: is there ``h' ∈ p(D)`` with ``h ⊑ h'``?

    Answers of ``p`` are defined on subsets of ``x̄``, so a mapping using a
    non-free variable can never be extended by one.
    """
    dom = h.domain()
    if not dom <= frozenset(p.free_variables):
        return False
    if not dom <= p.variables():
        return False
    subtree = minimal_subtree_containing(p, dom)
    atoms = [a.substitute(h.as_dict()) for a in p.atoms_of(subtree)]
    if method == "naive":
        return satisfiable(atoms, db)
    # Non-emptiness of the substituted subtree CQ, as a Boolean query.
    return bool(cq_evaluate(ConjunctiveQuery((), atoms), db, method=method))


def partial_answers(p: WDPT, db: Database) -> FrozenSet[Mapping]:
    """All partial answers of ``p`` over ``db`` — the downward closure of
    ``p(D)`` under restriction.  Reference-quality helper for tests."""
    from .evaluation import evaluate

    out = set()
    for answer in evaluate(p, db):
        domain = sorted(answer.domain())
        for mask in range(1 << len(domain)):
            chosen = [v for i, v in enumerate(domain) if mask >> i & 1]
            out.add(answer.restrict(chosen))
    return frozenset(out)
