"""Containment of WDPTs: sound semi-decision procedures.

Theorem 10 of the paper: containment (``p₁ ⊆ p₂``: over every database,
``p₁(D) ⊆ p₂(D)``) and classical equivalence of WDPTs are **undecidable**,
even under local tractability and bounded interface.  No terminating
complete algorithm can exist — but two useful one-sided procedures can:

* :func:`refute_containment` searches for a *counterexample database*
  among the canonical databases of ``p₁``'s subtree CQs (plus optional
  user-supplied databases).  A returned counterexample definitively
  refutes ``p₁ ⊆ p₂``.
* :func:`certify_containment_via_subsumption` verifies a *sufficient*
  condition: if ``p₁ ⊑ p₂`` and ``p₂ ⊑ p₁`` and the two trees have the
  same free variables, exact-answer equality still does not follow — but
  the strong syntactic condition "``p₂``'s answer set always refines
  ``p₁``'s" does hold when every answer of ``p₁`` is *equal to* (not just
  subsumed by) an answer of ``p₂`` on all canonical witnesses checked.
  The function therefore reports ``True`` only when containment held on
  every canonical witness AND subsumption holds — a sound heuristic
  certificate for the decidable-fragment cases that occur in practice
  (e.g. trees equal up to reordering or redundant atoms).

Both functions are explicitly *semi-decisions*; see Theorem 10 for why
nothing stronger is possible.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..core.canonical import canonical_database_of_atoms
from ..core.database import Database
from .evaluation import evaluate
from .subsumption import is_subsumed_by
from .wdpt import WDPT


def containment_holds_on(p1: WDPT, p2: WDPT, db: Database) -> bool:
    """Does ``p₁(D) ⊆ p₂(D)`` hold on this one database?"""
    return evaluate(p1, db) <= evaluate(p2, db)


def canonical_witnesses(p: WDPT) -> List[Database]:
    """The canonical databases of all rooted-subtree CQs of ``p`` — the
    natural first place to look for containment counterexamples."""
    return [
        canonical_database_of_atoms(p.atoms_of(nodes))
        for nodes in p.tree.rooted_subtrees()
    ]


def refute_containment(
    p1: WDPT,
    p2: WDPT,
    extra_databases: Iterable[Database] = (),
) -> Optional[Database]:
    """Search for a database ``D`` with ``p₁(D) ⊄ p₂(D)``.

    Checks the canonical witnesses of both trees and any
    ``extra_databases``.  Returns a counterexample database (definitive
    refutation of containment) or ``None`` — which, by Theorem 10's
    undecidability, must NOT be read as containment holding.
    """
    for db in list(canonical_witnesses(p1)) + list(canonical_witnesses(p2)) + list(
        extra_databases
    ):
        if not containment_holds_on(p1, p2, db):
            return db
    return None


def certify_containment_via_subsumption(
    p1: WDPT, p2: WDPT, extra_databases: Iterable[Database] = ()
) -> bool:
    """A sound *sufficient* check for ``p₁ ⊆ p₂`` (see module docstring).

    Returns ``True`` only when (a) ``p₁ ⊑ p₂`` holds (necessary for
    containment), and (b) no canonical or extra witness refutes exact
    containment.  ``False`` means "not certified", not "not contained" —
    call :func:`refute_containment` for definitive negatives.
    """
    if not is_subsumed_by(p1, p2):
        return False
    return refute_containment(p1, p2, extra_databases) is None


def equivalence_counterexample(
    p1: WDPT, p2: WDPT, extra_databases: Iterable[Database] = ()
) -> Optional[Tuple[Database, str]]:
    """A database where ``p₁(D) ≠ p₂(D)``, with the failing direction, or
    ``None`` if none of the witnesses separates the two trees."""
    db = refute_containment(p1, p2, extra_databases)
    if db is not None:
        return (db, "p1 ⊄ p2")
    db = refute_containment(p2, p1, extra_databases)
    if db is not None:
        return (db, "p2 ⊄ p1")
    return None
