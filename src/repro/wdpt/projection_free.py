"""Projection-free WDPT evaluation (Theorem 4, after [17, 18]).

For projection-free WDPTs (``x̄`` = all variables) the evaluation problem
is tractable under local tractability alone — no interface bound needed.
The reason: a candidate answer ``h`` *determines* the witness subtree, so
nothing has to be guessed:

1. compute, top-down, the maximal rooted subtree ``R`` of nodes whose
   variables are all in ``dom(h)`` and whose atoms ``h`` satisfies;
2. ``h`` must be defined on exactly ``vars(R)``;
3. maximality: no child of ``R`` may admit *any* homomorphism extending
   ``h`` on the shared variables — one local CQ-satisfiability check per
   frontier child (polynomial whenever node labels are in a tractable CQ
   class, which is the locally-tractable hypothesis of Theorem 4).

The same function doubles as a cross-check for the general Theorem 6
dynamic program on projection-free inputs.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from ..core.database import Database
from ..core.mappings import Mapping
from ..cqalgs.naive import satisfiable
from .tree import ROOT
from .wdpt import WDPT


def eval_projection_free(p: WDPT, db: Database, h: Mapping) -> bool:
    """``EVAL`` for projection-free WDPTs in polynomial time (Theorem 4).

    Raises ``ValueError`` if ``p`` has projection (use
    :func:`repro.wdpt.eval_tractable.eval_tractable` there).
    """
    if not p.is_projection_free():
        raise ValueError(
            "eval_projection_free requires a projection-free WDPT; "
            "this one projects onto %r" % (p.free_variables,)
        )
    dom = h.domain()
    if not dom <= p.variables():
        return False

    # Step 1: the h-induced subtree R.
    matched: Set[int] = set()
    if not _node_matched(p, db, h, ROOT):
        return False
    stack = [ROOT]
    matched.add(ROOT)
    while stack:
        node = stack.pop()
        for child in p.tree.children(node):
            if _node_matched(p, db, h, child):
                matched.add(child)
                stack.append(child)

    # Step 2: h is defined on exactly the matched region.
    covered: Set = set()
    for node in matched:
        covered |= p.node_variables(node)
    if frozenset(covered) != dom:
        return False

    # Step 3: maximality at the frontier.
    for node in matched:
        for child in p.tree.children(node):
            if child in matched:
                continue
            shared = p.node_variables(child) & dom
            if satisfiable(p.labels[child], db, h.restrict(shared)):
                return False
    return True


def _node_matched(p: WDPT, db: Database, h: Mapping, node: int) -> bool:
    """Are all of ``node``'s variables bound by ``h`` and its atoms, under
    ``h``, facts of the database?"""
    if not p.node_variables(node) <= h.domain():
        return False
    assignment = h.as_dict()
    return all(a.substitute(assignment) in db for a in p.labels[node])


def evaluate_projection_free(p: WDPT, db: Database) -> FrozenSet[Mapping]:
    """``p(D)`` for projection-free WDPTs.

    Delegates to the general top-down evaluator (whose product
    decomposition is already polynomial per answer); provided for symmetry
    and for call sites that want the projection-free precondition
    enforced."""
    if not p.is_projection_free():
        raise ValueError("evaluate_projection_free requires a projection-free WDPT")
    from .evaluation import evaluate

    return evaluate(p, db)
