"""Syntactic classes of WDPTs (Sections 3.2, 3.3 and 5).

* **Local tractability** ``ℓ-C``: the Boolean CQ of every node label lies in
  ``C`` (``TW(k)`` or ``HW(k)``).
* **Bounded interface** ``BI(c)``: every node shares at most ``c`` variables
  with the union of its children.
* **Global tractability** ``g-C``: ``q_{T'} ∈ C`` for every rooted subtree
  ``T'``.  For ``C = TW(k)`` this collapses to ``tw(q_T) ≤ k`` because
  treewidth is monotone under subhypergraphs (a rooted subtree's atoms are a
  subset of the tree's atoms); for ``C = HW(k)`` no such collapse exists —
  hypertreewidth is *not* subquery-monotone — so rooted subtrees are
  enumerated (with a β-hypertreewidth fast path, which *is* subquery-closed).
* **Well-behaved** ``WB(k)``: ``g-TW(k)`` or ``g-HW'(k)`` (Section 5), the
  classes used for semantic optimization and approximation.

Also here: Proposition 2's containment
``ℓ-C(k) ∩ BI(c) ⊆ g-C(k + 2c)`` as an executable fact used by tests.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from ..core.cq import ConjunctiveQuery
from ..hypergraphs.beta import beta_hypertreewidth_at_most
from ..hypergraphs.hypergraph import hypergraph_of_atoms
from ..hypergraphs.treewidth import treewidth_at_most
from .wdpt import WDPT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..planner.planner import Planner
    from ..planner.profile import TreeProfile


def _tree_profile(p: WDPT, planner: "Optional[Planner]") -> "TreeProfile":
    """The shared structural profile of ``p`` (per-node and global widths
    are computed once per tree shape and memoized in the plan cache)."""
    if planner is None:
        from ..planner.planner import get_default_planner

        planner = get_default_planner()
    return planner.profile_wdpt(p)


# ---------------------------------------------------------------------------
# Local tractability
# ---------------------------------------------------------------------------
def is_locally_in_tw(p: WDPT, k: int, planner: "Optional[Planner]" = None) -> bool:
    """``p ∈ ℓ-TW(k)``: each node's atom set has treewidth ≤ k."""
    return _tree_profile(p, planner).locally_in_tw(k)


def is_locally_in_hw(p: WDPT, k: int, planner: "Optional[Planner]" = None) -> bool:
    """``p ∈ ℓ-HW(k)``: each node's atom set has hypertreewidth ≤ k."""
    return _tree_profile(p, planner).locally_in_hw(k)


# ---------------------------------------------------------------------------
# Bounded interface
# ---------------------------------------------------------------------------
def interface_width(p: WDPT, planner: "Optional[Planner]" = None) -> int:
    """The smallest ``c`` with ``p ∈ BI(c)``: the maximum, over nodes, of
    the number of variables shared with the node's children."""
    return _tree_profile(p, planner).interface_width


def has_bounded_interface(p: WDPT, c: int, planner: "Optional[Planner]" = None) -> bool:
    """``p ∈ BI(c)``."""
    return interface_width(p, planner=planner) <= c


# ---------------------------------------------------------------------------
# Global tractability
# ---------------------------------------------------------------------------
def is_globally_in_tw(p: WDPT, k: int, planner: "Optional[Planner]" = None) -> bool:
    """``p ∈ g-TW(k)``.

    Collapses to a single check on the full tree: for every rooted subtree
    ``T'`` the hypergraph of ``q_{T'}`` is a subhypergraph of that of
    ``q_T``, and treewidth never increases under subhypergraphs.
    """
    return _tree_profile(p, planner).globally_in_tw(k)


def is_globally_in_hw(p: WDPT, k: int, planner: "Optional[Planner]" = None) -> bool:
    """``p ∈ g-HW(k)``: every rooted subtree's CQ has hypertreewidth ≤ k.

    Fast path: β-hypertreewidth ≤ k of the full CQ implies membership
    (``HW'(k) ⊆ HW(k)`` and is subquery-closed).  Otherwise rooted subtrees
    are enumerated — exponential in tree size, matching the paper's remark
    that recognizing global tractability is itself non-trivial for HW —
    against memoized subtree profiles.
    """
    return _tree_profile(p, planner).globally_in_hw(k)


def is_globally_in_beta_hw(p: WDPT, k: int, planner: "Optional[Planner]" = None) -> bool:
    """``p ∈ g-HW'(k)``.

    ``HW'(k)`` is subquery-closed, so it suffices that ``q_T ∈ HW'(k)``
    (the full tree is itself a rooted subtree, and every ``q_{T'}`` is a
    subquery of ``q_T``).
    """
    return _tree_profile(p, planner).globally_in_beta_hw(k)


# ---------------------------------------------------------------------------
# Well-behaved classes WB(k) (Section 5)
# ---------------------------------------------------------------------------
#: The two instantiations of C(k) in WB(k) = g-C(k).
WB_TW = "tw"
WB_BETA_HW = "beta-hw"


def is_in_wb(p: WDPT, k: int, variant: str = WB_TW) -> bool:
    """``p ∈ WB(k)`` with ``C(k) = TW(k)`` (default) or ``HW'(k)``."""
    if variant == WB_TW:
        return is_globally_in_tw(p, k)
    if variant == WB_BETA_HW:
        return is_globally_in_beta_hw(p, k)
    raise ValueError("unknown WB variant %r" % (variant,))


def cq_class_test(k: int, variant: str = WB_TW) -> Callable[[ConjunctiveQuery], bool]:
    """The CQ-level class test ``C(k)`` matching a WB variant."""
    if variant == WB_TW:
        return lambda q: treewidth_at_most(hypergraph_of_atoms(q.atoms), k)
    if variant == WB_BETA_HW:
        return lambda q: beta_hypertreewidth_at_most(hypergraph_of_atoms(q.atoms), k)
    raise ValueError("unknown WB variant %r" % (variant,))


# ---------------------------------------------------------------------------
# Proposition 2 (part 1), as an executable fact
# ---------------------------------------------------------------------------
def proposition2_bound(k: int, c: int) -> int:
    """The global width bound ``k + 2c`` of Proposition 2(1)."""
    return k + 2 * c


def check_proposition2(p: WDPT, k: int, c: int) -> bool:
    """Verify Proposition 2(1) on a concrete tree: if
    ``p ∈ ℓ-TW(k) ∩ BI(c)`` then ``p ∈ g-TW(k + 2c)``."""
    if not (is_locally_in_tw(p, k) and has_bounded_interface(p, c)):
        return True  # vacuously
    return is_globally_in_tw(p, proposition2_bound(k, c))
