"""Unions of WDPTs (Section 6).

A UWDPT ``φ = ⋃ᵢ pᵢ`` evaluates to ``⋃ᵢ pᵢ(D)`` (the ``pᵢ`` need not share
free variables).  Evaluation problems lift directly (Theorem 16); the
interesting part is semantic optimization, which becomes dramatically
cheaper than for single WDPTs through the ``φ_cq`` translation:

* :func:`phi_cq` — the union of the projected subtree CQs ``r_{T'}`` over
  all members and all rooted subtrees; ``φ ≡ₛ φ_cq`` (shown in the text
  before Proposition 9, and checkable here with
  :func:`repro.wdpt.subsumption.subsumed_on`-style spot tests).
* :func:`is_in_m_uwb` — Proposition 9 / Theorem 17: ``φ ∈ M(UWB(k))`` iff
  every CQ of the reduced union ``φ_cq^r`` is equivalent to a CQ of
  ``C(k)``, decided exactly via cores.
* :func:`uwb_equivalent` — the Theorem 17(2) construction of an
  ``≡ₛ``-equivalent union of polynomial-size ``WB(k)`` members.
* :func:`uwb_approximation` — Theorem 18: the unique (up to ``≡ₛ``)
  ``UWB(k)``-approximation as the union of the per-CQ ``C(k)``-
  approximations of ``φ_cq``.
* :func:`is_uwb_approximation` — Proposition 10's test: ``φ' ⊑ φ`` and
  ``φ_cq-app ⊑ φ'``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.canonical import canonical_database_of_atoms, freezing_of
from ..core.mappings import Mapping, maximal_mappings
from ..cqalgs.approximation import in_beta_hw, in_tw, union_approximation
from ..cqalgs.containment import reduce_union
from ..cqalgs.cores import core, semantically_in_beta_hw, semantically_in_tw
from .classes import WB_TW
from .evaluation import evaluate as wdpt_evaluate
from .partial_eval import partial_eval as wdpt_partial_eval
from .subtrees import subtree_free_variables
from .wdpt import WDPT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..planner.planner import Planner


class UWDPT:
    """A union of WDPTs.

    >>> from repro.core import atom
    >>> from repro.wdpt.wdpt import WDPT
    >>> from repro.core.cq import ConjunctiveQuery
    >>> phi = UWDPT([WDPT.from_cq(ConjunctiveQuery(["?x"], [atom("E", "?x", "?y")]))])
    >>> len(phi)
    1
    """

    __slots__ = ("members",)

    def __init__(self, members: Iterable[WDPT]):
        self.members: Tuple[WDPT, ...] = tuple(members)
        if not self.members:
            raise ValueError("a union of WDPTs needs at least one member")

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UWDPT) and other.members == self.members

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self.members)

    def __repr__(self) -> str:
        return "UWDPT(%d members)" % len(self.members)

    def size(self) -> int:
        return sum(p.size() for p in self.members)


# ---------------------------------------------------------------------------
# Evaluation problems (Theorem 16)
# ---------------------------------------------------------------------------
def evaluate_union(phi: UWDPT, db: Database) -> FrozenSet[Mapping]:
    """``φ(D) = ⋃ᵢ pᵢ(D)``."""
    out: Set[Mapping] = set()
    for p in phi:
        out |= wdpt_evaluate(p, db)
    return frozenset(out)


def union_eval(phi: UWDPT, db: Database, h: Mapping) -> bool:
    """``⋃-EVAL``: is ``h ∈ φ(D)``?"""
    return any(h in wdpt_evaluate(p, db) for p in phi)


def union_partial_eval(
    phi: UWDPT,
    db: Database,
    h: Mapping,
    method: str = "naive",
    planner: "Optional[Planner]" = None,
) -> bool:
    """``⋃-PARTIAL-EVAL``: does some ``h' ∈ φ(D)`` extend ``h``?
    LOGCFL-style: one Theorem 8 call per member (sharing one planner's
    memoized subtree profiles across members and candidate mappings)."""
    return any(
        wdpt_partial_eval(p, db, h, method=method, planner=planner) for p in phi
    )


def union_max_eval(
    phi: UWDPT,
    db: Database,
    h: Mapping,
    method: str = "naive",
    planner: "Optional[Planner]" = None,
) -> bool:
    """``⋃-MAX-EVAL``: is ``h`` a ⊑-maximal answer of ``φ(D)``?

    ``h`` must be a partial answer of the union, and no member may admit a
    partial answer properly extending it (single-variable extensions
    suffice — restrictions of partial answers are partial answers).
    """
    if not union_partial_eval(phi, db, h, method=method, planner=planner):
        return False
    for p in phi:
        if not h.domain() <= frozenset(p.free_variables):
            continue
        for y in p.free_variables:
            if y in h:
                continue
            from .max_eval import _extension_exists

            if _extension_exists(p, db, h, y, method, planner=planner):
                return False
    return True


def evaluate_union_max(phi: UWDPT, db: Database) -> FrozenSet[Mapping]:
    """``φₘ(D)``: the ⊑-maximal answers of the union."""
    return maximal_mappings(evaluate_union(phi, db))


# ---------------------------------------------------------------------------
# The φ_cq translation (Section 6)
# ---------------------------------------------------------------------------
def phi_cq(phi: UWDPT) -> List[ConjunctiveQuery]:
    """``φ_cq``: the union over members ``p`` and rooted subtrees ``T'`` of
    the projected CQs ``r_{T'}`` (Example 8).  Deduplicated."""
    out: List[ConjunctiveQuery] = []
    seen: Set[ConjunctiveQuery] = set()
    for p in phi:
        for nodes in p.tree.rooted_subtrees():
            q = p.subtree_answer_cq(nodes)
            if q not in seen:
                seen.add(q)
                out.append(q)
    return out


def phi_cq_reduced(phi: UWDPT) -> List[ConjunctiveQuery]:
    """``φ_cq^r``: ``φ_cq`` with contained disjuncts removed (proof of
    Theorem 17)."""
    return reduce_union(phi_cq(phi))


# ---------------------------------------------------------------------------
# Subsumption between unions
# ---------------------------------------------------------------------------
def union_subsumed_by(
    phi1: UWDPT,
    phi2: UWDPT,
    method: str = "naive",
    planner: "Optional[Planner]" = None,
) -> bool:
    """``φ₁ ⊑ φ₂``: for every database, every answer of ``φ₁`` is subsumed
    by an answer of ``φ₂``.

    Same canonical-database characterization as for single WDPTs: for each
    member ``p`` of ``φ₁`` and each rooted subtree ``S`` of ``p``, the
    frozen free part of ``S`` must be a partial answer of ``φ₂`` over the
    canonical database of ``q_S``.
    """
    for p in phi1:
        for subtree in p.tree.rooted_subtrees():
            db = canonical_database_of_atoms(p.atoms_of(subtree))
            nu = freezing_of(subtree_free_variables(p, subtree))
            if not union_partial_eval(phi2, db, nu, method=method, planner=planner):
                return False
    return True


def union_subsumption_equivalent(
    phi1: UWDPT,
    phi2: UWDPT,
    method: str = "naive",
    planner: "Optional[Planner]" = None,
) -> bool:
    """``φ₁ ≡ₛ φ₂``."""
    return union_subsumed_by(
        phi1, phi2, method=method, planner=planner
    ) and union_subsumed_by(phi2, phi1, method=method, planner=planner)


def as_union_of_cqs(queries: Sequence[ConjunctiveQuery]) -> UWDPT:
    """Wrap CQs as single-node WDPTs forming a UWDPT."""
    return UWDPT([WDPT.from_cq(q) for q in queries])


# ---------------------------------------------------------------------------
# Membership in M(UWB(k))  (Proposition 9 / Theorem 17)
# ---------------------------------------------------------------------------
def is_in_m_uwb(phi: UWDPT, k: int, variant: str = WB_TW) -> bool:
    """``φ ∈ M(UWB(k))``: every CQ of ``φ_cq^r`` is equivalent to a CQ in
    ``C(k)`` — exact, via cores."""
    member_test = semantically_in_tw if variant == WB_TW else semantically_in_beta_hw
    return all(member_test(q, k) for q in phi_cq_reduced(phi))


def uwb_equivalent(phi: UWDPT, k: int, variant: str = WB_TW) -> Optional[UWDPT]:
    """Theorem 17(2): an ``≡ₛ``-equivalent union of ``WB(k)`` WDPTs (each
    of polynomial size — here: the cores of the ``φ_cq^r`` disjuncts), or
    ``None`` when ``φ ∉ M(UWB(k))``."""
    member_test = semantically_in_tw if variant == WB_TW else semantically_in_beta_hw
    cqs = phi_cq_reduced(phi)
    if not all(member_test(q, k) for q in cqs):
        return None
    return as_union_of_cqs([core(q) for q in cqs])


# ---------------------------------------------------------------------------
# UWB(k)-approximation  (Theorem 18, Proposition 10)
# ---------------------------------------------------------------------------
def uwb_approximation(phi: UWDPT, k: int, variant: str = WB_TW) -> UWDPT:
    """The unique (up to ``≡ₛ``) ``UWB(k)``-approximation of ``φ``: the
    union of the ``C(k)``-approximations of the CQs of ``φ_cq`` [4]."""
    class_test = in_tw(k) if variant == WB_TW else in_beta_hw(k)
    approx_cqs = union_approximation(phi_cq(phi), class_test)
    return as_union_of_cqs(reduce_union(approx_cqs))


def is_uwb_approximation(
    phi_prime: UWDPT,
    phi: UWDPT,
    k: int,
    variant: str = WB_TW,
    method: str = "naive",
    planner: "Optional[Planner]" = None,
) -> bool:
    """Proposition 10's decision procedure: ``φ'`` is a
    ``UWB(k)``-approximation of ``φ`` iff ``φ' ⊑ φ`` and the canonical
    approximation ``φ_cq-app`` is ⊑ ``φ'``.  (Membership of ``φ'`` in
    ``UWB(k)`` is also required and checked.)"""
    from .classes import is_in_wb

    if not all(is_in_wb(p, k, variant) for p in phi_prime):
        return False
    if not union_subsumed_by(phi_prime, phi, method=method, planner=planner):
        return False
    canonical_app = uwb_approximation(phi, k, variant)
    return union_subsumed_by(canonical_app, phi_prime, method=method, planner=planner)
