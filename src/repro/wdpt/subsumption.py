"""Subsumption and subsumption-equivalence of WDPTs (Section 4).

``p₁ ⊑ p₂``: over every database, every answer of ``p₁`` is subsumed by an
answer of ``p₂`` [3].  Containment and classical equivalence are
undecidable for WDPTs (Theorem 10); subsumption is the decidable, robust
replacement, and ``≡ₛ`` (both directions) coincides with the
maximal-mapping equivalence ``≡_max`` (Proposition 5).

Decision procedure (the [17] characterization, recast through this
library's own primitives): for **every** rooted subtree ``S`` of ``p₁``,

    freeze ``q_S`` into its canonical database ``D_S`` and ask
    ``PARTIAL-EVAL(p₂, D_S, ν)`` where ``ν`` freezes the free variables of
    ``p₁`` occurring in ``S``.

*Soundness*: if ``p₁ ⊑ p₂``, the identity embedding of ``S`` extends to a
maximal homomorphism of ``p₁`` over ``D_S`` whose answer subsumes ``ν``,
so some answer of ``p₂`` over ``D_S`` subsumes ``ν``.  *Completeness*: for
any ``D`` and ``h ∈ p₁(D)`` with witness subtree ``S`` and maximal
homomorphism ``ĥ``, compose the ``p₂``-side witness over ``D_S`` with the
database homomorphism ``unfreeze∘ĥ : D_S → D`` and extend it maximally —
the result is an answer of ``p₂`` over ``D`` subsuming ``h``.

The loop over subtrees is the deliberate exponential part (the problem is
Π₂ᵖ-complete); each inner check is one ``PARTIAL-EVAL`` of ``p₂``, which by
Theorem 8 is polynomial whenever ``p₂`` is globally tractable.  This code
path therefore *is* the asymmetric coNP-membership of Theorem 11(1): the
right-hand side's restriction alone shrinks the inner cost, while ``p₁``
may be arbitrary.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..core.canonical import canonical_database_of_atoms, freezing_of
from ..core.database import Database
from .partial_eval import partial_eval
from .subtrees import subtree_free_variables
from .wdpt import WDPT


def is_subsumed_by(p1: WDPT, p2: WDPT, method: str = "naive") -> bool:
    """``p₁ ⊑ p₂``.

    ``method`` is forwarded to the inner ``PARTIAL-EVAL`` calls (use
    ``"auto"`` to exploit global tractability of ``p₂``).
    """
    frees2 = frozenset(p2.free_variables)
    for subtree in p1.tree.rooted_subtrees():
        frees_in_subtree = subtree_free_variables(p1, subtree)
        if not frees_in_subtree <= frees2:
            # p₂ can never bind these variables, so no answer of p₂ can
            # subsume an answer mentioning them.
            return False
        db = canonical_database_of_atoms(p1.atoms_of(subtree))
        nu = freezing_of(frees_in_subtree)
        if not partial_eval(p2, db, nu, method=method):
            return False
    return True


def subsumption_counterexample(
    p1: WDPT, p2: WDPT, method: str = "naive"
) -> Optional[FrozenSet[int]]:
    """The first rooted subtree of ``p1`` witnessing ``p1 ⋢ p2``, or
    ``None`` when ``p1 ⊑ p2``.

    The returned node set identifies a concrete failure: the canonical
    database of that subtree admits an answer of ``p1`` that no answer of
    ``p2`` subsumes — ready-made debugging output for query rewrites.
    """
    frees2 = frozenset(p2.free_variables)
    for subtree in p1.tree.rooted_subtrees():
        frees_in_subtree = subtree_free_variables(p1, subtree)
        if not frees_in_subtree <= frees2:
            return frozenset(subtree)
        db = canonical_database_of_atoms(p1.atoms_of(subtree))
        nu = freezing_of(frees_in_subtree)
        if not partial_eval(p2, db, nu, method=method):
            return frozenset(subtree)
    return None


def is_subsumption_equivalent(p1: WDPT, p2: WDPT, method: str = "naive") -> bool:
    """``p₁ ≡ₛ p₂``: subsumption in both directions."""
    return is_subsumed_by(p1, p2, method=method) and is_subsumed_by(
        p2, p1, method=method
    )


def is_properly_subsumed_by(p1: WDPT, p2: WDPT, method: str = "naive") -> bool:
    """``p₁ ⊏ p₂``: ``p₁ ⊑ p₂`` but not ``p₁ ≡ₛ p₂``."""
    return is_subsumed_by(p1, p2, method=method) and not is_subsumed_by(
        p2, p1, method=method
    )


def is_max_equivalent(p1: WDPT, p2: WDPT, method: str = "naive") -> bool:
    """``p₁ ≡_max p₂`` — identical maximal-mapping answers over every
    database.  By Proposition 5 this *is* subsumption-equivalence; the
    function exists to make that identification explicit (and testable
    against the semantic definition on concrete databases)."""
    return is_subsumption_equivalent(p1, p2, method=method)


def max_equivalent_on(p1: WDPT, p2: WDPT, db: Database) -> bool:
    """Semantic spot check used in tests: ``p₁ₘ(D) = p₂ₘ(D)`` on one
    concrete database."""
    from .evaluation import evaluate_max

    return evaluate_max(p1, db) == evaluate_max(p2, db)


def subsumed_on(p1: WDPT, p2: WDPT, db: Database) -> bool:
    """Semantic spot check: every answer of ``p₁(D)`` is subsumed by some
    answer of ``p₂(D)`` on one concrete database."""
    from .evaluation import evaluate

    answers2 = evaluate(p2, db)
    return all(
        any(a1.subsumed_by(a2) for a2 in answers2) for a1 in evaluate(p1, db)
    )
