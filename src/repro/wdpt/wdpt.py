"""Well-designed pattern trees (Definition 1).

A WDPT over a schema ``σ`` is a triple ``(T, λ, x̄)``:

1. ``T`` is a tree rooted in ``r`` and ``λ`` labels each node with a set of
   relational atoms;
2. *well-designedness*: for every variable ``y``, the nodes of ``T``
   mentioning ``y`` form a connected subgraph of ``T``;
3. ``x̄`` is a tuple of distinct *free variables* mentioned in ``T``.

:class:`WDPT` is immutable.  It exposes the two derived CQs the paper works
with for a rooted subtree ``T'``:

* ``q_{T'}``  (:meth:`WDPT.subtree_cq`): all variables of ``T'`` free —
  the CQ whose homomorphisms (total mappings) define the semantics;
* ``r_{T'}``  (:meth:`WDPT.subtree_answer_cq`): projected to ``x̄`` —
  the CQ used by the ``φ_cq`` construction of Section 6.

Nodes carry *non-empty* atom sets; this matches every construction in the
paper and keeps per-node CQs well-formed.
"""

from __future__ import annotations

from typing import (
    FrozenSet,
    Iterable,
    List,
    Mapping as TMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.atoms import Atom, constants_of, variables_of
from ..core.cq import ConjunctiveQuery
from ..core.terms import Constant, Variable, term
from ..exceptions import NotWellDesignedError, SchemaError
from .tree import ROOT, PatternTree

#: A nested-list description of a labelled tree: ``(atoms, [children…])``.
NestedNode = Tuple[Iterable[Atom], Sequence["NestedNode"]]


class WDPT:
    """A well-designed pattern tree ``(T, λ, x̄)``.

    Parameters
    ----------
    tree:
        The rooted tree ``T``.
    labels:
        ``λ``: one non-empty atom set per node id of ``tree``.
    free_variables:
        ``x̄``: distinct variables mentioned somewhere in the tree.

    Raises
    ------
    NotWellDesignedError
        If some variable's occurrence nodes are disconnected.
    SchemaError
        On malformed labels or free variables.
    """

    __slots__ = ("tree", "labels", "free_variables", "_node_vars", "_hash", "_fingerprint")

    def __init__(
        self,
        tree: PatternTree,
        labels: Sequence[Iterable[Atom]],
        free_variables: Iterable[object] = (),
    ):
        if len(labels) != len(tree):
            raise SchemaError(
                "tree has %d nodes but %d labels were given" % (len(tree), len(labels))
            )
        label_sets: List[FrozenSet[Atom]] = []
        for node, atoms in enumerate(labels):
            atom_set = frozenset(atoms)
            if not atom_set:
                raise SchemaError("node %d has an empty label" % node)
            label_sets.append(atom_set)
        self.tree = tree
        self.labels: Tuple[FrozenSet[Atom], ...] = tuple(label_sets)
        self._node_vars: Tuple[FrozenSet[Variable], ...] = tuple(
            variables_of(label) for label in self.labels
        )
        frees: List[Variable] = []
        for v in free_variables:
            t = term(v)
            if not isinstance(t, Variable):
                raise SchemaError("free variable expected, got %r" % (v,))
            frees.append(t)
        if len(set(frees)) != len(frees):
            raise SchemaError("free variables must be distinct: %r" % (frees,))
        all_vars = self.variables()
        stray = [v for v in frees if v not in all_vars]
        if stray:
            raise SchemaError("free variables %r are not mentioned in the tree" % (stray,))
        self.free_variables: Tuple[Variable, ...] = tuple(frees)
        self._check_well_designed()
        self._hash = hash((self.tree, self.labels, self.free_variables))
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def label(self, node: int) -> FrozenSet[Atom]:
        """``λ(node)``."""
        return self.labels[node]

    def node_variables(self, node: int) -> FrozenSet[Variable]:
        """Variables mentioned in ``λ(node)``."""
        return self._node_vars[node]

    def variables(self) -> FrozenSet[Variable]:
        """All variables mentioned in the tree."""
        out: set = set()
        for vs in self._node_vars:
            out |= vs
        return frozenset(out)

    def constants(self) -> FrozenSet[Constant]:
        """All constants mentioned in the tree."""
        out: set = set()
        for label in self.labels:
            out |= constants_of(label)
        return frozenset(out)

    def existential_variables(self) -> FrozenSet[Variable]:
        return self.variables() - frozenset(self.free_variables)

    def is_projection_free(self) -> bool:
        """Does ``x̄`` contain every variable of the tree (Definition 1)?"""
        return frozenset(self.free_variables) == self.variables()

    def size(self) -> int:
        """``|p|``: size of ``q_T`` in standard relational notation."""
        return sum(a.arity for label in self.labels for a in label)

    def atom_count(self) -> int:
        return sum(len(label) for label in self.labels)

    def is_single_node(self) -> bool:
        return len(self.tree) == 1

    def structural_fingerprint(self) -> str:
        """A stable, canonical key for the tree's structure.

        Independent of object identity, per-node atom ordering, and the
        per-process hash seed; the tree shape, sorted node labels, and free
        tuple are serialized and digested.  Used as the plan-cache key by
        :mod:`repro.planner`.
        """
        if self._fingerprint is None:
            import hashlib

            parts = ["wdpt|%r" % (tuple(self.tree.parent(n) for n in self.tree.nodes() if n != 0),)]
            parts.append(",".join(repr(v) for v in self.free_variables))
            for label in self.labels:
                parts.append(";".join(repr(a) for a in sorted(label)))
            self._fingerprint = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Derived CQs
    # ------------------------------------------------------------------
    def atoms_of(self, nodes: Iterable[int]) -> FrozenSet[Atom]:
        """Union of the labels of ``nodes``."""
        out: set = set()
        for n in nodes:
            out |= self.labels[n]
        return frozenset(out)

    def subtree_cq(self, nodes: Iterable[int]) -> ConjunctiveQuery:
        """``q_{T'}``: the CQ of a rooted subtree with *all* its variables
        free (the paper's Definition just below Definition 1)."""
        node_set = self._checked_subtree(nodes)
        atoms = self.atoms_of(node_set)
        return ConjunctiveQuery(sorted(variables_of(atoms)), atoms)

    def subtree_answer_cq(self, nodes: Iterable[int]) -> ConjunctiveQuery:
        """``r_{T'}``: like ``q_{T'}`` but projected to the free variables
        occurring in the subtree (Section 6)."""
        node_set = self._checked_subtree(nodes)
        atoms = self.atoms_of(node_set)
        vs = variables_of(atoms)
        frees = [v for v in self.free_variables if v in vs]
        return ConjunctiveQuery(frees, atoms)

    def full_cq(self) -> ConjunctiveQuery:
        """``q_T`` for the whole tree."""
        return self.subtree_cq(self.tree.nodes())

    def _checked_subtree(self, nodes: Iterable[int]) -> FrozenSet[int]:
        node_set = frozenset(nodes)
        if not self.tree.is_rooted_subtree(node_set):
            raise ValueError("%r is not a rooted subtree" % (sorted(node_set),))
        return node_set

    # ------------------------------------------------------------------
    # Well-designedness
    # ------------------------------------------------------------------
    def _check_well_designed(self) -> None:
        for v in sorted(self.variables()):
            holders = [n for n in self.tree.nodes() if v in self._node_vars[n]]
            if len(holders) <= 1:
                continue
            # The occurrence nodes must induce a connected subgraph of T.
            holder_set = set(holders)
            seen = {holders[0]}
            stack = [holders[0]]
            while stack:
                n = stack.pop()
                neighbours = list(self.tree.children(n))
                parent = self.tree.parent(n)
                if parent is not None:
                    neighbours.append(parent)
                for m in neighbours:
                    if m in holder_set and m not in seen:
                        seen.add(m)
                        stack.append(m)
            if seen != holder_set:
                raise NotWellDesignedError(
                    "variable %r occurs in disconnected nodes %r" % (v, sorted(holder_set))
                )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_cq(cls, query: ConjunctiveQuery) -> "WDPT":
        """The single-node WDPT equivalent to ``query`` (the paper's
        embedding of CQs into WDPTs)."""
        return cls(PatternTree(), [query.atoms], query.free_variables)

    def to_cq(self) -> ConjunctiveQuery:
        """The CQ of a *single-node* WDPT (raises otherwise)."""
        if not self.is_single_node():
            raise ValueError("only single-node WDPTs convert to CQs")
        return ConjunctiveQuery(self.free_variables, self.labels[ROOT])

    def with_free_variables(self, frees: Iterable[object]) -> "WDPT":
        """Same tree and labels with a different projection tuple."""
        return WDPT(self.tree, self.labels, frees)

    def rename(self, renaming: TMapping[Variable, Variable]) -> "WDPT":
        """Apply a variable renaming to every label and the free tuple.

        May raise :class:`~repro.exceptions.NotWellDesignedError` if the
        renaming breaks connectedness (e.g. merging variables from disjoint
        branches) — callers doing quotient searches rely on this check.
        """
        new_labels = [
            frozenset(a.rename(renaming) for a in label) for label in self.labels
        ]
        new_frees = []
        seen = set()
        for v in self.free_variables:
            image = renaming.get(v, v)
            if image in seen:
                raise SchemaError("renaming merges free variables at %r" % (image,))
            seen.add(image)
            new_frees.append(image)
        return WDPT(self.tree, new_labels, new_frees)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WDPT)
            and other._hash == self._hash
            and other.tree == self.tree
            and other.labels == self.labels
            and other.free_variables == self.free_variables
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for node in self.tree.nodes():
            indent = "  " * self.tree.depth(node)
            atoms = ", ".join(repr(a) for a in sorted(self.labels[node]))
            parts.append("%s[%d] {%s}" % (indent, node, atoms))
        frees = ", ".join(repr(v) for v in self.free_variables)
        return "WDPT(free=[%s])\n%s" % (frees, "\n".join(parts))


def wdpt_from_nested(
    nested: NestedNode, free_variables: Iterable[object] = ()
) -> WDPT:
    """Build a WDPT from a nested ``(atoms, [children…])`` description.

    >>> from repro.core import atom
    >>> p = wdpt_from_nested(
    ...     ([atom("R", "?x", "?y")], [([atom("S", "?y", "?z")], [])]),
    ...     free_variables=["?x", "?z"],
    ... )
    >>> len(p.tree)
    2
    """
    labels: List[Iterable[Atom]] = []
    parents: List[int] = []

    def walk(node: NestedNode, parent: Optional[int]) -> None:
        atoms, children = node
        labels.append(list(atoms))
        my_id = len(labels) - 1
        if parent is not None:
            parents.append(parent)
        for child in children:
            walk(child, my_id)

    walk(nested, None)
    return WDPT(PatternTree(parents), labels, free_variables)
