"""Maximal-mapping evaluation of WDPTs (Theorem 9, Section 3.4).

``MAX-EVAL``: is ``h ∈ p_m(D)``, i.e. is ``h`` an answer that is
⊑-maximal among all answers?

The algorithm rests on a small lemma (implicit in the paper's treatment):

    ``h ∈ p_m(D)``  ⟺  ``h`` is a partial answer and no partial answer
    properly extends ``h``.

(⇐) a maximal partial answer is subsumed by a full answer, hence equals
it; (⇒) any properly-extending partial answer would be subsumed by an
answer properly extending ``h``.  Moreover restrictions of partial answers
are partial answers, so it suffices to refute *single-variable* extensions
``h ∪ {y ↦ v}`` — and the existential over ``v`` collapses into one
CQ-satisfiability call per free variable ``y`` (leave ``y`` unsubstituted).
Total cost: ``1 + |x̄ ∖ dom(h)|`` partial-evaluation calls, each LOGCFL
under global tractability — matching Theorem 9.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..core.database import Database
from ..core.mappings import Mapping
from ..cqalgs.naive import satisfiable
from ..telemetry.resources import account_subquery
from ..telemetry.tracer import current_tracer
from .partial_eval import partial_eval
from .subtrees import minimal_subtree_containing
from .wdpt import WDPT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..planner.planner import Planner


def max_eval(
    p: WDPT,
    db: Database,
    h: Mapping,
    method: str = "naive",
    planner: "Optional[Planner]" = None,
) -> bool:
    """``MAX-EVAL``: is ``h ∈ p_m(D)``?"""
    tracer = current_tracer()
    with tracer.span("wdpt.max_eval", method=method) as sp:
        if not partial_eval(p, db, h, method=method, planner=planner):
            if tracer.enabled:
                sp.set(result=False, extension_checks=0)
            return False
        dom = h.domain()
        extension_checks = 0
        for y in p.free_variables:
            if y in dom:
                continue
            extension_checks += 1
            if _extension_exists(p, db, h, y, method, planner=planner):
                if tracer.enabled:
                    sp.set(result=False, extension_checks=extension_checks)
                return False
        if tracer.enabled:
            sp.set(result=True, extension_checks=extension_checks)
        return True


def _extension_exists(
    p: WDPT,
    db: Database,
    h: Mapping,
    y,
    method: str,
    planner: "Optional[Planner]" = None,
) -> bool:
    """Is some ``h ∪ {y ↦ v}`` a partial answer?  Equivalently: is the
    minimal subtree for ``dom(h) ∪ {y}``, with ``h`` substituted and ``y``
    left open, satisfiable?"""
    account_subquery()
    subtree = minimal_subtree_containing(p, set(h.domain()) | {y})
    if method == "naive":
        atoms = [a.substitute(h.as_dict()) for a in p.atoms_of(subtree)]
        return satisfiable(atoms, db)
    if planner is None:
        from ..planner.planner import get_default_planner

        planner = get_default_planner()
    sub_profile = planner.profile_wdpt(p).subtree_profile(subtree)
    return planner.satisfiable_substituted(sub_profile, h.as_dict(), db, method=method)
