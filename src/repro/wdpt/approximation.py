"""Semantic optimization and approximation of WDPTs (Section 5).

Two problems over the well-behaved classes ``WB(k) = g-TW(k)`` or
``g-HW'(k)``:

* **Membership** in ``M(WB(k))``: is ``p`` subsumption-equivalent to some
  WDPT in ``WB(k)``?  (Theorem 13: decidable in NEXPTIME^NP.)
* **Approximation**: find ``p' ∈ WB(k)`` with ``p' ⊑ p`` and nothing of
  ``WB(k)`` strictly between (Theorem 14: always exists, exponential size,
  double-exponential time).

Both are realized as searches over an explicit **candidate space** derived
from the Lemma 1 normal form of ``p``:

1. every rooted subtree of the normal form, with the remaining branches
   dropped (dropping branches only loses optional bindings, so the result
   is ⊑ ``p``);
2. the single-node *collapse* of each such subtree (conjoining all its
   atoms — the ``r_{T'}`` queries of Section 6);
3. every variable-identification *quotient* of each of the above that
   keeps free variables distinct and stays well-designed.

Every candidate is verified against the exact subsumption test, so results
are always **sound**: a returned approximation is in ``WB(k)``, is ⊑ ``p``,
and is ⊑-maximal *within the candidate space*; a returned membership
witness really is ``≡ₛ``-equivalent to ``p`` and in ``WB(k)``.  The space
realizes the two transformations the Lemma 1 proof applies to an arbitrary
witness (node restructuring + per-subtree homomorphism images); searching
all WDPTs up to the lemma's exponential size bound would be the fully
general procedure and is intentionally out of budget — see DESIGN.md.  For
*single-node* WDPTs (i.e. CQs) both problems are solved exactly via the
CQ theory of [4]/[10] (cores and quotient approximations).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..core.terms import Variable
from ..exceptions import (
    BudgetExceededError,
    ConstantsNotSupportedError,
    NotWellDesignedError,
    SchemaError,
)
from ..cqalgs.approximation import approximations as cq_approximations
from ..cqalgs.approximation import in_beta_hw, in_tw
from ..cqalgs.cores import semantically_in_beta_hw, semantically_in_tw
from .classes import WB_TW, is_in_wb
from .subsumption import is_properly_subsumed_by, is_subsumed_by, is_subsumption_equivalent
from .transform import lemma1_normal_form, _restrict_to_nodes
from .tree import PatternTree
from .wdpt import WDPT

#: Caps for the candidate-space search.
MAX_SUBTREES = 512
MAX_QUOTIENT_VARIABLES = 10


# ---------------------------------------------------------------------------
# Candidate space
# ---------------------------------------------------------------------------
def candidate_space(p: WDPT) -> Iterator[WDPT]:
    """The Lemma-1-derived candidate WDPTs (each is ⊑ ``p`` by
    construction; this invariant is nevertheless re-verified by callers).

    Deduplicated; includes ``p``'s normal form itself.
    """
    if p.constants():
        raise ConstantsNotSupportedError(
            "approximation requires a constant-free WDPT (paper Section 5)"
        )
    norm = lemma1_normal_form(p)
    seen: Set[WDPT] = set()
    subtree_count = 0
    for nodes in norm.tree.rooted_subtrees():
        subtree_count += 1
        if subtree_count > MAX_SUBTREES:
            raise BudgetExceededError(
                "candidate search limited to %d rooted subtrees" % MAX_SUBTREES
            )
        restricted = _restrict_to_nodes(norm, set(nodes))
        collapsed = _collapse(restricted)
        for base in (restricted, collapsed):
            for candidate in _quotients_of(base):
                if candidate not in seen:
                    seen.add(candidate)
                    yield candidate


def _collapse(p: WDPT) -> WDPT:
    """All atoms of ``p`` conjoined into a single node (the total-AND
    reading; its answers are the fully-matched answers of ``p``)."""
    atoms = p.atoms_of(p.tree.nodes())
    vs = {v for a in atoms for v in a.variables()}
    frees = [v for v in p.free_variables if v in vs]
    return WDPT(PatternTree(), [atoms], frees)


def _quotients_of(p: WDPT) -> Iterator[WDPT]:
    """Existential-variable quotients of ``p`` (identity included).

    Only *existential* variables are merged (with each other); free
    variables stay untouched.  Unlike the CQ case, merging an existential
    into a free variable is unsound for trees: it can relocate the free
    variable into another node, changing which subtrees bind it, and the
    quotient then fails ``⊑ p``.  Renamings that break well-designedness
    (merging variables of disjoint branches) are skipped.

    With this restriction every yielded quotient is ⊑ ``p``: composing a
    quotient homomorphism with ``θ`` maps any witness subtree of the
    quotient to the same subtree of ``p``, preserving the free bindings.
    """
    existentials = sorted(p.existential_variables())
    if len(existentials) > MAX_QUOTIENT_VARIABLES:
        # Too many variables to enumerate partitions: fall back to the
        # identity quotient only (still a sound candidate).
        yield p
        return

    def partitions(i: int, blocks: List[List[Variable]]) -> Iterator[List[List[Variable]]]:
        if i == len(existentials):
            yield [list(b) for b in blocks]
            return
        v = existentials[i]
        for b in blocks:
            b.append(v)
            yield from partitions(i + 1, blocks)
            b.pop()
        blocks.append([v])
        yield from partitions(i + 1, blocks)
        blocks.pop()

    emitted: Set[WDPT] = set()
    for blocks in partitions(0, []):
        renaming: Dict[Variable, Variable] = {}
        for block in blocks:
            representative = block[0]
            for v in block:
                renaming[v] = representative
        try:
            q = p.rename(renaming)
        except (NotWellDesignedError, SchemaError):
            continue
        if q not in emitted:
            emitted.add(q)
            yield q


# ---------------------------------------------------------------------------
# Membership in M(WB(k))  (Theorem 13)
# ---------------------------------------------------------------------------
def find_wb_equivalent(
    p: WDPT, k: int, variant: str = WB_TW, method: str = "naive"
) -> Optional[WDPT]:
    """A WDPT ``p' ∈ WB(k)`` with ``p ≡ₛ p'``, or ``None`` if no candidate
    witnesses membership.

    Exact for single-node WDPTs (CQ theory); for larger trees a ``None``
    means "no witness in the candidate space" (sound positives only).
    """
    if is_in_wb(p, k, variant):
        return p
    if p.is_single_node():
        return _single_node_equivalent(p, k, variant)
    norm = lemma1_normal_form(p)
    if is_in_wb(norm, k, variant):
        return norm
    for candidate in candidate_space(p):
        if not is_in_wb(candidate, k, variant):
            continue
        if is_subsumption_equivalent(p, candidate, method=method):
            return candidate
    return None


def is_in_m_wb(p: WDPT, k: int, variant: str = WB_TW, method: str = "naive") -> bool:
    """Is ``p ∈ M(WB(k))``?  (See :func:`find_wb_equivalent` for scope.)"""
    return find_wb_equivalent(p, k, variant, method=method) is not None


def _single_node_equivalent(p: WDPT, k: int, variant: str) -> Optional[WDPT]:
    query = p.to_cq()
    if variant == WB_TW:
        member = semantically_in_tw(query, k)
    else:
        member = semantically_in_beta_hw(query, k)
    if not member:
        return None
    from ..cqalgs.cores import core

    return WDPT.from_cq(core(query))


# ---------------------------------------------------------------------------
# WB(k)-approximation  (Theorem 14)
# ---------------------------------------------------------------------------
def wb_approximations(
    p: WDPT, k: int, variant: str = WB_TW, method: str = "naive"
) -> List[WDPT]:
    """The ⊑-maximal in-class candidates subsumed by ``p`` — the
    ``WB(k)``-approximations within the candidate space (exact
    approximations for single-node WDPTs, via [4]).

    Always non-empty: collapsing the whole tree to one node and identifying
    all existential variables into a single block eventually lands in
    ``WB(k)`` for every ``k ≥ 1``.
    """
    if p.is_single_node():
        class_test = in_tw(k) if variant == WB_TW else in_beta_hw(k)
        return [WDPT.from_cq(q) for q in cq_approximations(p.to_cq(), class_test)]
    in_class: List[WDPT] = []
    for candidate in candidate_space(p):
        if is_in_wb(candidate, k, variant) and is_subsumed_by(candidate, p, method=method):
            in_class.append(candidate)
    maximal: List[WDPT] = []
    for q in in_class:
        if any(is_properly_subsumed_by(q, other, method=method) for other in in_class):
            continue
        maximal.append(q)
    # Deduplicate up to ≡ₛ.
    unique: List[WDPT] = []
    for q in maximal:
        if not any(is_subsumption_equivalent(q, u, method=method) for u in unique):
            unique.append(q)
    unique.sort(key=repr)
    return unique


def wb_approximation(
    p: WDPT, k: int, variant: str = WB_TW, method: str = "naive"
) -> WDPT:
    """One ``WB(k)``-approximation of ``p`` (the first in a deterministic
    order).  If ``p`` is already in ``WB(k)``, returns ``p`` itself."""
    if is_in_wb(p, k, variant):
        return p
    candidates = wb_approximations(p, k, variant, method=method)
    if not candidates:  # pragma: no cover - the space contains collapses
        raise BudgetExceededError("no approximation found in the candidate space")
    return candidates[0]


def is_wb_approximation(
    candidate: WDPT, p: WDPT, k: int, variant: str = WB_TW, method: str = "naive"
) -> bool:
    """Decision problem ``WB(k)``-APPROXIMATION (Proposition 8), relative
    to the candidate space: ``candidate ∈ WB(k)``, ``candidate ⊑ p``, and
    no in-class candidate lies strictly between."""
    if not is_in_wb(candidate, k, variant):
        return False
    if not is_subsumed_by(candidate, p, method=method):
        return False
    for other in candidate_space(p):
        if not is_in_wb(other, k, variant):
            continue
        if (
            is_subsumed_by(other, p, method=method)
            and is_properly_subsumed_by(candidate, other, method=method)
        ):
            return False
    return True
