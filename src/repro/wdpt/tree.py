"""Rooted trees for pattern trees.

:class:`PatternTree` is a plain rooted tree over integer node ids with the
root fixed at id ``0``.  It carries no labels — the labelling function ``λ``
lives in :class:`repro.wdpt.wdpt.WDPT` — and is deliberately minimal:
parents, children, depth-first orders, paths to the root, and subtree
extraction, which is all the WDPT algorithms need.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

ROOT = 0


class PatternTree:
    """A rooted tree over node ids ``0 … n−1`` with root ``0``.

    Constructed from parent links: ``parents[i]`` is the parent of node
    ``i + 1`` (the root has no entry).  Every parent id must be smaller
    than its child id, which both guarantees acyclicity and makes node ids
    a topological order.

    >>> t = PatternTree([0, 0, 1])   # root with children 1, 2; 3 under 1
    >>> t.children(0)
    (1, 2)
    >>> t.parent(3)
    1
    """

    __slots__ = ("_parents", "_children")

    def __init__(self, parents: Sequence[int] = ()):
        self._parents: Tuple[int, ...] = tuple(parents)
        for child_minus_one, parent in enumerate(self._parents):
            child = child_minus_one + 1
            if not 0 <= parent < child:
                raise ValueError(
                    "parent of node %d must be an earlier node, got %d" % (child, parent)
                )
        children: Dict[int, List[int]] = {i: [] for i in range(len(self._parents) + 1)}
        for child_minus_one, parent in enumerate(self._parents):
            children[parent].append(child_minus_one + 1)
        self._children: Dict[int, Tuple[int, ...]] = {
            node: tuple(kids) for node, kids in children.items()
        }

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        return ROOT

    def __len__(self) -> int:
        return len(self._parents) + 1

    def nodes(self) -> range:
        """All node ids in topological (parents-first) order."""
        return range(len(self))

    def parent(self, node: int) -> Optional[int]:
        """Parent id, or ``None`` for the root."""
        if node == ROOT:
            return None
        return self._parents[node - 1]

    def children(self, node: int) -> Tuple[int, ...]:
        return self._children[node]

    def is_leaf(self, node: int) -> bool:
        return not self._children[node]

    def leaves(self) -> Tuple[int, ...]:
        return tuple(n for n in self.nodes() if self.is_leaf(n))

    def depth(self, node: int) -> int:
        d = 0
        while node != ROOT:
            node = self._parents[node - 1]
            d += 1
        return d

    def path_to_root(self, node: int) -> List[int]:
        """Nodes from ``node`` up to and including the root."""
        path = [node]
        while node != ROOT:
            node = self._parents[node - 1]
            path.append(node)
        return path

    def descendants(self, node: int) -> FrozenSet[int]:
        """All strict descendants of ``node``."""
        out: List[int] = []
        stack = list(self._children[node])
        while stack:
            n = stack.pop()
            out.append(n)
            stack.extend(self._children[n])
        return frozenset(out)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PatternTree) and other._parents == self._parents

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self._parents)

    def __repr__(self) -> str:
        return "PatternTree(%r)" % (list(self._parents),)

    # ------------------------------------------------------------------
    # Rooted-subtree utilities
    # ------------------------------------------------------------------
    def is_rooted_subtree(self, nodes: Iterable[int]) -> bool:
        """Is ``nodes`` a subtree rooted at the root (contains the root and
        is closed under taking parents)?"""
        node_set = frozenset(nodes)
        if ROOT not in node_set:
            return False
        return all(
            n == ROOT or self._parents[n - 1] in node_set for n in node_set
        )

    def rooted_subtrees(self) -> Iterator[FrozenSet[int]]:
        """All subtrees rooted at the root, as frozensets of node ids.

        There are exponentially many in general — this enumeration is the
        deliberate exponential part of subsumption testing, reference
        semantics and the ``φ_cq`` construction.
        """

        def expand(node: int) -> List[FrozenSet[int]]:
            """All rooted subtrees of the subtree under ``node`` that
            include ``node``."""
            options: List[FrozenSet[int]] = [frozenset([node])]
            for child in self._children[node]:
                child_options = expand(child)
                options = [
                    base | extra
                    for base in options
                    for extra in ([frozenset()] + child_options)
                ]
            return options

        # Rebuild lazily instead of materializing the cross-product above:
        # the simple recursive product is fine for the tree sizes in scope,
        # but we still yield rather than return a list.
        yield from expand(ROOT)

    def count_rooted_subtrees(self) -> int:
        """Number of rooted subtrees (product-form dynamic program)."""
        counts: Dict[int, int] = {}
        for node in reversed(self.nodes()):
            total = 1
            for child in self._children[node]:
                total *= counts[child] + 1
            counts[node] = total
        return counts[ROOT]
