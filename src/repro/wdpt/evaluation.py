"""WDPT semantics and the general (exponential) evaluation algorithms.

Definition 2 of the paper: a homomorphism from ``p = (T, λ, x̄)`` to a
database ``D`` is a partial mapping that is a total homomorphism of
``q_{T'}`` for some rooted subtree ``T'``; ``p(D)`` collects the
projections ``h|_x̄`` of the *maximal* such homomorphisms, and ``p_m(D)``
(Section 3.4) keeps only the ⊑-maximal elements of ``p(D)``.

Two independent evaluators are provided and cross-checked in the tests:

* :func:`homomorphisms_reference` — literal subtree enumeration (the
  definition, exponential in ``|T|``);
* :func:`maximal_homomorphisms` — a top-down procedural evaluator that
  grows homomorphisms node by node (the natural OPT-style algorithm; still
  exponential in the worst case, as it must be — ``EVAL`` is Σ₂ᵖ-complete
  for arbitrary WDPTs, Theorem 1).

``EVAL``, the exact-membership decision problem, is solved here by full
enumeration; the polynomial algorithm for ``ℓ-C ∩ BI(c)`` lives in
:mod:`repro.wdpt.eval_tractable`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery
from ..core.database import Database
from ..core.mappings import Mapping, maximal_mappings
from ..cqalgs.naive import homomorphisms as cq_homomorphisms
from ..cqalgs.yannakakis import evaluate_with_join_tree
from ..hypergraphs.gyo import join_tree_of_atoms
from ..parallel.pool import WorkerPool, current_pool
from ..relalg.config import MODE_LEGACY, kernel_mode
from ..telemetry.metrics import NodeStatsCollector
from ..telemetry.resources import account_rows
from ..telemetry.tracer import current_tracer
from .tree import ROOT
from .wdpt import WDPT

#: Per-node join-tree cache: node → (sorted atoms, links), or ``None``
#: for labels the columnar extension cannot serve (cyclic hypergraph).
NodeTrees = Dict[int, Optional[Tuple[Tuple[Atom, ...], Tuple[Tuple[int, int], ...]]]]

if TYPE_CHECKING:  # pragma: no cover - import cycle at runtime
    from ..planner.profile import TreeProfile


# ---------------------------------------------------------------------------
# Reference semantics: literal Definition 2
# ---------------------------------------------------------------------------
def homomorphisms_reference(p: WDPT, db: Database) -> FrozenSet[Mapping]:
    """All homomorphisms from ``p`` to ``db`` (not only maximal ones),
    via rooted-subtree enumeration."""
    out: Set[Mapping] = set()
    for nodes in p.tree.rooted_subtrees():
        atoms = p.atoms_of(nodes)
        out.update(cq_homomorphisms(atoms, db))
    return frozenset(out)


def evaluate_reference(p: WDPT, db: Database) -> FrozenSet[Mapping]:
    """``p(D)`` by the book: maximal homomorphisms, projected to ``x̄``."""
    maximal = maximal_mappings(homomorphisms_reference(p, db))
    return frozenset(h.restrict(p.free_variables) for h in maximal)


# ---------------------------------------------------------------------------
# Top-down procedural evaluator
# ---------------------------------------------------------------------------
def _node_homomorphisms(
    p: WDPT,
    db: Database,
    node: int,
    sigma: Mapping,
    trees: Optional[NodeTrees],
) -> Iterable[Mapping]:
    """The homomorphisms of ``λ(node)`` extending ``sigma`` (each total on
    ``vars(λ(node)) ∪ dom(sigma)``) — the per-node extension step of the
    top-down evaluator.

    With ``trees`` (the per-node join-tree cache) and an acyclic label,
    the step runs set-at-a-time: ``sigma`` is substituted into the label
    atoms and the remaining variables are evaluated as one full CQ
    through the Yannakakis kernels (the join tree of the unsubstituted
    label stays valid — instantiating variables only shrinks hyperedges).
    Cyclic or empty labels, and ``trees is None`` (legacy kernel mode),
    fall back to the historical backtracking search.
    """
    label = p.labels[node]
    if trees is None or not label:
        return cq_homomorphisms(label, db, pre_assignment=sigma)
    entry = trees.get(node, False)
    if entry is False:
        atoms = tuple(sorted(set(label)))
        links = join_tree_of_atoms(atoms)
        entry = (atoms, tuple(links)) if links is not None else None
        trees[node] = entry
    if entry is None:
        return cq_homomorphisms(label, db, pre_assignment=sigma)
    atoms, links = entry
    if len(sigma):
        substituted = tuple(a.substitute(sigma) for a in atoms)
    else:
        substituted = atoms
    frees: Set = set()
    for a in substituted:
        frees |= a.variables()
    q = ConjunctiveQuery(tuple(sorted(frees)), substituted)
    rows = evaluate_with_join_tree(q, db, substituted, links)
    if not len(sigma):
        return rows
    base = sigma.as_dict()
    out: List[Mapping] = []
    for m in rows:
        merged = dict(base)
        merged.update(m.items())
        out.append(Mapping.from_trusted(merged))
    return out


def _parallel_safe_nodes(p: WDPT, profile: "Optional[TreeProfile]") -> FrozenSet[int]:
    """The nodes this query may fan out at — the planner's marking when a
    profile is supplied, otherwise the same ≥2-children criterion computed
    locally (sibling independence holds for every well-designed tree)."""
    if profile is not None:
        return profile.parallel_safe_nodes
    tree = p.tree
    return frozenset(n for n in tree.nodes() if len(tree.children(n)) >= 2)


def maximal_homomorphisms(
    p: WDPT, db: Database, profile: "Optional[TreeProfile]" = None
) -> FrozenSet[Mapping]:
    """The maximal homomorphisms from ``p`` to ``db``, grown top-down.

    Well-designedness makes a node's variables a separator: two sibling
    subtrees can only share variables through their common parent.  Given a
    homomorphism of the parent, the extensions into different children are
    therefore *independent*, and the maximal homomorphisms decompose as a
    product:

        ``max(t, h) = {h} ⨝ ∏_{c child of t} branch(c, h|_{shared})``

    where ``branch(c, σ)`` is the set of maximal extensions into ``c``'s
    subtree — or the trivial ``{σ}`` when ``λ(c)`` admits no extension at
    all (the OPT branch simply fails).  A child that *is* extendable must
    be extended in every maximal homomorphism, which is exactly what the
    product encodes.  No a-posteriori maximality filtering is needed.

    When tracing is enabled (:mod:`repro.telemetry`) a per-node stats
    collector records candidate-mapping counts, maximal-extension counts,
    and inclusive wall time per tree node; the aggregate is attached to the
    ``wdpt.maximal_homomorphisms`` span as ``node_stats`` and joined with
    the static profile by ``Session.analyze``.

    When a :class:`~repro.parallel.pool.WorkerPool` is installed
    (:func:`~repro.parallel.pool.use_pool`), the independent units of work
    fan out to it: the per-root-candidate branch computations, and — at
    nodes the planner marks parallel-safe (``profile=`` a
    :class:`~repro.planner.profile.TreeProfile`) — the sibling-subtree
    extensions inside :func:`_branch_solutions`.  The product decomposition
    above is exactly the soundness argument: sibling work never shares
    state beyond the (immutable) parent mapping, so the parallel schedule
    computes the same set.
    """
    tracer = current_tracer()
    collector = NodeStatsCollector() if tracer.enabled else None
    pool = current_pool()
    safe = _parallel_safe_nodes(p, profile) if pool is not None else frozenset()
    trees: Optional[NodeTrees] = {} if kernel_mode() != MODE_LEGACY else None
    out: Set[Mapping] = set()
    with tracer.span("wdpt.maximal_homomorphisms") as sp:
        roots = list(_node_homomorphisms(p, db, ROOT, Mapping(), trees))
        if pool is not None and len(roots) >= 2:
            # Fan the root candidates out; each task explores its branch
            # sequentially (nested dispatch would run inline anyway).
            branches = pool.map_tasks(
                lambda h: _branch_solutions(p, db, ROOT, h, collector, trees=trees),
                roots,
            )
            for solutions in branches:
                out.update(solutions)
        else:
            for h in roots:
                out.update(
                    _branch_solutions(p, db, ROOT, h, collector, pool, safe, trees)
                )
        account_rows(len(out))
        if collector is not None:
            collector.add(ROOT, candidates=len(roots), extensions=len(out))
            sp.set(node_stats=collector.rows(), maximal=len(out))
    return frozenset(out)


def _child_solutions(
    p: WDPT,
    db: Database,
    child: int,
    sigma: Mapping,
    collector: Optional[NodeStatsCollector],
    pool: "Optional[WorkerPool]",
    safe: FrozenSet[int],
    trees: Optional[NodeTrees] = None,
) -> List[Mapping]:
    """The maximal extensions of ``sigma`` into ``child``'s subtree
    (empty when ``λ(child)`` admits none — the OPT branch fails)."""
    start = time.perf_counter() if collector is not None else 0.0
    candidates = 0
    solutions: List[Mapping] = []
    for g in _node_homomorphisms(p, db, child, sigma, trees):
        candidates += 1
        solutions.extend(
            _branch_solutions(p, db, child, g, collector, pool, safe, trees)
        )
    if collector is not None:
        collector.add(
            child,
            candidates=candidates,
            extensions=len(solutions),
            seconds=time.perf_counter() - start,
        )
    return solutions


def _branch_solutions(
    p: WDPT,
    db: Database,
    node: int,
    h: Mapping,
    collector: Optional[NodeStatsCollector] = None,
    pool: "Optional[WorkerPool]" = None,
    safe: FrozenSet[int] = frozenset(),
    trees: Optional[NodeTrees] = None,
) -> List[Mapping]:
    """All maximal homomorphisms of the subtree under ``node`` that extend
    the node homomorphism ``h`` (``h`` is total on ``vars(node)``)."""
    results: List[Mapping] = [h]
    node_vars = p.node_variables(node)
    children = p.tree.children(node)
    if pool is not None and node in safe:
        # Sibling subtrees are independent given h (see the product
        # decomposition in maximal_homomorphisms) — compute them
        # concurrently, then fold the product in child order.
        per_child = pool.map_tasks(
            lambda child: _child_solutions(
                p, db, child, h.restrict(node_vars & p.node_variables(child)),
                collector, None, safe, trees,
            ),
            children,
        )
        for child_solutions in per_child:
            if not child_solutions:
                continue  # OPT branch fails: the answers keep h unextended
            results = [r.union(m) for r in results for m in child_solutions]
            account_rows(len(results))
        return results
    for child in children:
        sigma = h.restrict(node_vars & p.node_variables(child))
        child_solutions = _child_solutions(
            p, db, child, sigma, collector, pool, safe, trees
        )
        if not child_solutions:
            continue  # OPT branch fails: the answers keep h unextended
        results = [r.union(m) for r in results for m in child_solutions]
        account_rows(len(results))
    return results


def evaluate(
    p: WDPT, db: Database, profile: "Optional[TreeProfile]" = None
) -> FrozenSet[Mapping]:
    """``p(D)`` via the top-down evaluator.

    ``profile`` (an optional planner :class:`TreeProfile`) supplies the
    parallel-safe fan-out marking when a worker pool is installed; without
    it the marking is recomputed locally, so the answer never depends on
    whether a profile was passed.

    >>> from repro.core import atom, Database, Mapping
    >>> from repro.wdpt.wdpt import wdpt_from_nested
    >>> p = wdpt_from_nested(
    ...     ([atom("E", "?x", "?y")], [([atom("F", "?y", "?z")], [])]),
    ...     free_variables=["?x", "?z"],
    ... )
    >>> db = Database([atom("E", 1, 2)])
    >>> evaluate(p, db) == frozenset([Mapping({"?x": 1})])
    True
    """
    tracer = current_tracer()
    with tracer.span("wdpt.evaluate", nodes=len(p.tree)) as sp:
        maximal = maximal_homomorphisms(p, db, profile)
        answers = frozenset(h.restrict(p.free_variables) for h in maximal)
        if tracer.enabled:
            sp.set(answers=len(answers))
        return answers


def evaluate_max(
    p: WDPT, db: Database, profile: "Optional[TreeProfile]" = None
) -> FrozenSet[Mapping]:
    """``p_m(D)``: the ⊑-maximal answers (Section 3.4)."""
    with current_tracer().span("wdpt.evaluate_max"):
        return maximal_mappings(evaluate(p, db, profile))


# ---------------------------------------------------------------------------
# Decision problems, by enumeration (the general, hard case)
# ---------------------------------------------------------------------------
def eval_check(p: WDPT, db: Database, h: Mapping) -> bool:
    """``EVAL``: is ``h ∈ p(D)``?  (General algorithm: full enumeration.)"""
    return h in evaluate(p, db)


def max_eval_check(p: WDPT, db: Database, h: Mapping) -> bool:
    """``MAX-EVAL``: is ``h ∈ p_m(D)``?  (General algorithm.)"""
    return h in evaluate_max(p, db)


def partial_eval_check(p: WDPT, db: Database, h: Mapping) -> bool:
    """``PARTIAL-EVAL``: is some ``h' ∈ p(D)`` with ``h ⊑ h'``?
    (General algorithm; the polynomial one is in
    :mod:`repro.wdpt.partial_eval`.)"""
    return any(h.subsumed_by(answer) for answer in evaluate(p, db))
