"""The tractable exact-evaluation algorithm (Theorems 6 and 7).

Decides ``h ∈ p(D)`` by an interface dynamic program over the tree, which
is polynomial for WDPTs that are locally tractable with ``c``-bounded
interface — the paper's headline tractability result.  The same code is a
correct (if worst-case exponential) algorithm for arbitrary WDPTs.

Derivation (following the proof sketch of Theorem 6, Appendix A.1):

``h ∈ p(D)`` iff there is a rooted subtree ``T*`` and a homomorphism
``ĥ ∈ q_{T*}(D)`` with ``ĥ|_x̄ = h`` that is maximal.  Writing

* ``T'`` — the minimal rooted subtree containing ``dom(h)``;
* ``T''`` — the maximal rooted subtree mentioning no free variable
  outside ``dom(h)``;

``T*`` must satisfy ``T' ⊆ T* ⊆ T''`` (smaller misses part of ``h``;
larger forces extra free variables into the projection).  Maximality of
``ĥ`` means no homomorphism of ``p`` strictly extends it — equivalently,
after absorbing every frontier node satisfiable without new variables,
no frontier node of ``T*`` admits *any* extension of ``ĥ``.

The dynamic program processes nodes of ``T''`` top-down.  For a node ``t``
and an assignment ``σ`` of its parent-interface ``S_t = vars(t) ∩
vars(parent(t))`` (well-designedness makes ``S_t`` a separator):

* ``IN(t, σ)`` — ``t`` can be taken into ``T*``: some homomorphism ``g``
  of ``λ(t)`` extends ``σ`` and agrees with ``h`` on the free variables of
  ``t``, such that every child ``u`` of ``t`` is *handled*:
  mandatory children (in ``T'``) satisfy ``IN(u, g|_{S_u})``; optional
  children (in ``T''``) satisfy ``IN`` or ``BLOCKED``; children outside
  ``T''`` (they introduce a free variable ∉ dom(h)) must be ``BLOCKED``.
* ``BLOCKED(u, σ)`` — no homomorphism of ``λ(u)`` extends ``σ`` at all
  (extensions need not respect ``h``: *any* extension kills maximality).

Only the restriction of ``g`` to the child-interface set
``K_t = vars(t) ∩ ⋃_u vars(u)`` matters, and ``|K_t| ≤ c`` under
``BI(c)``; the DP enumerates candidate assignments of ``K_t`` (at most
``|adom|^c``, pre-filtered per variable by unary matching) and checks each
with one CQ-satisfiability call per node — polynomial for fixed ``c``
under local tractability, mirroring the LOGCFL bound of Theorem 7.
"""

from __future__ import annotations

import time
from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from ..core.atoms import Atom
from ..core.database import Database
from ..core.mappings import Mapping
from ..core.terms import Constant, Variable
from ..cqalgs.naive import satisfiable
from ..parallel.pool import current_pool
from ..telemetry.metrics import NodeStatsCollector
from ..telemetry.resources import account_rows, account_subquery
from ..telemetry.tracer import current_tracer
from .subtrees import (
    maximal_subtree_within_free,
    minimal_subtree_containing,
    subtree_free_variables,
)
from .tree import ROOT
from .wdpt import WDPT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..planner.planner import Planner


def eval_tractable(
    p: WDPT,
    db: Database,
    h: Mapping,
    method: str = "naive",
    planner: "Optional[Planner]" = None,
) -> bool:
    """``EVAL`` via the Theorem 6 dynamic program: is ``h ∈ p(D)``?

    Correct for every WDPT; polynomial when ``p`` is locally tractable with
    bounded interface.  ``method`` selects the per-node CQ backend:
    ``"naive"`` backtracking (default) or ``"auto"`` to route node checks
    through the planner's memoized per-node profiles (the node label's join
    tree / decomposition is analysed once and reused for every interface
    assignment σ) — the configuration matching Theorem 7's LOGCFL bound
    when nodes are in ``TW(k)``/``HW(k)``.
    """
    tracer = current_tracer()
    with tracer.span("wdpt.eval_tractable", method=method) as sp:
        frees = frozenset(p.free_variables)
        dom = h.domain()
        if not dom <= frees:
            return False
        tree_vars = p.variables()
        if not dom <= tree_vars:
            return False

        mandatory = minimal_subtree_containing(p, dom)
        if subtree_free_variables(p, mandatory) != dom:
            # The minimal subtree drags in a free variable h is undefined on:
            # every candidate ĥ would project to strictly more than h.
            return False
        allowed = maximal_subtree_within_free(p, dom)
        if not allowed:  # root itself mentions a forbidden free variable
            return False
        assert mandatory <= allowed

        dp = _InterfaceDP(p, db, h, mandatory, allowed, method=method, planner=planner)
        result = dp.node_in(ROOT, Mapping())
        if dp.collector is not None:
            sp.set(
                node_stats=dp.collector.rows(),
                result=result,
                mandatory=sorted(mandatory),
                allowed=sorted(allowed),
            )
        return result


class _InterfaceDP:
    """Memoized ``IN``/``BLOCKED`` computation (see module docstring).

    When a worker pool is installed (:mod:`repro.parallel`), the per-child
    ``IN``/``BLOCKED`` checks of :meth:`_children_handled` fan out at
    parallel-safe nodes — sound because ``S_u`` is a separator, so sibling
    checks share nothing beyond the immutable ``g``.  The memo tables are
    plain dicts shared across workers: a racing miss recomputes (both
    sides write the same value), never corrupts.
    """

    def __init__(
        self,
        p: WDPT,
        db: Database,
        h: Mapping,
        mandatory: FrozenSet[int],
        allowed: FrozenSet[int],
        method: str = "naive",
        planner: "Optional[Planner]" = None,
    ):
        self.p = p
        self.db = db
        self.h = h
        self.mandatory = mandatory
        self.allowed = allowed
        self.method = method
        self.collector = (
            NodeStatsCollector() if current_tracer().enabled else None
        )
        if method == "naive":
            self.planner = None
            self.tree_profile = None
        else:
            if planner is None:
                from ..planner.planner import get_default_planner

                planner = get_default_planner()
            self.planner = planner
            self.tree_profile = planner.profile_wdpt(p)
        self._in_memo: Dict[Tuple[int, Mapping], bool] = {}
        self._blocked_memo: Dict[Tuple[int, Mapping], bool] = {}
        # Captured once: workers never see an installed pool (dispatch from
        # inside a worker would run inline anyway).
        self._pool = current_pool()

    # ------------------------------------------------------------------
    # BLOCKED(u, σ): no homomorphism of λ(u) extends σ.
    # ------------------------------------------------------------------
    def blocked(self, node: int, sigma: Mapping) -> bool:
        key = (node, sigma)
        cached = self._blocked_memo.get(key)
        if cached is None:
            if self.collector is not None:
                self.collector.add(node, blocked_checks=1)
            cached = not self._satisfiable(node, sigma)
            self._blocked_memo[key] = cached
        return cached

    def _satisfiable(self, node: int, pre: Mapping) -> bool:
        """Satisfiability of ``σ(λ(node))``: naive backtracking, or the
        planner routing on the node's memoized (unsubstituted) profile."""
        account_subquery()
        collector = self.collector
        if collector is None:
            if self.method == "naive":
                return satisfiable(self.p.labels[node], self.db, pre)
            return self.planner.satisfiable_substituted(
                self.tree_profile.node_profile(node), pre.as_dict(), self.db, method=self.method
            )
        start = time.perf_counter()
        try:
            if self.method == "naive":
                return satisfiable(self.p.labels[node], self.db, pre)
            return self.planner.satisfiable_substituted(
                self.tree_profile.node_profile(node), pre.as_dict(), self.db, method=self.method
            )
        finally:
            collector.add(node, sat_checks=1, seconds=time.perf_counter() - start)

    # ------------------------------------------------------------------
    # IN(t, σ)
    # ------------------------------------------------------------------
    def node_in(self, node: int, sigma: Mapping) -> bool:
        key = (node, sigma)
        cached = self._in_memo.get(key)
        if cached is not None:
            return cached
        if self.collector is not None:
            self.collector.add(node, in_calls=1)
        result = self._compute_in(node, sigma)
        self._in_memo[key] = result
        return result

    def _compute_in(self, node: int, sigma: Mapping) -> bool:
        p = self.p
        node_vars = p.node_variables(node)
        pinned = sigma.union(self.h.restrict(node_vars))

        children = p.tree.children(node)
        if not children:
            return self._satisfiable(node, pinned)

        # Child-interface variables not already pinned.
        interface: Set[Variable] = set()
        for child in children:
            interface |= node_vars & p.node_variables(child)
        open_interface = sorted(interface - pinned.domain())

        candidates_tried = 0
        try:
            for tau in self._interface_candidates(node, open_interface, pinned):
                candidates_tried += 1
                g = pinned.union(tau)
                if not self._satisfiable(node, g):
                    continue
                if self._children_handled(node, children, g):
                    return True
            return False
        finally:
            if self.collector is not None:
                self.collector.add(node, candidates=candidates_tried)

    def _interface_candidates(
        self, node: int, open_interface: Sequence[Variable], pinned: Mapping
    ) -> Iterator[Mapping]:
        """Assignments of the unpinned child-interface variables.

        Candidate values per variable are pre-filtered: ``v ↦ a`` is only
        possible if every atom of ``λ(node)`` mentioning ``v`` has a
        matching fact with ``a`` in ``v``'s positions.  The cross product
        is at most ``|adom|^c`` under ``BI(c)``.
        """
        if not open_interface:
            yield Mapping()
            return
        per_variable: List[List[Constant]] = []
        n_candidates = 1
        for v in open_interface:
            values = self._candidate_values(node, v)
            if not values:
                return
            per_variable.append(values)
            n_candidates *= len(values)
        account_rows(n_candidates)
        for combo in product(*per_variable):
            yield Mapping(dict(zip(open_interface, combo)))

    def _candidate_values(self, node: int, v: Variable) -> List[Constant]:
        candidates: Optional[Set[Constant]] = None
        for a in self.p.labels[node]:
            positions = [i for i, t in enumerate(a.args) if t == v]
            if not positions:
                continue
            values = {
                fact.args[positions[0]]
                for fact in self.db.match(_blank_except(a, v))
                if all(fact.args[i] == fact.args[positions[0]] for i in positions)
            }
            candidates = values if candidates is None else candidates & values
            if not candidates:
                return []
        assert candidates is not None  # v occurs in some atom of the node
        return sorted(candidates)  # type: ignore[arg-type]

    def _children_handled(self, node: int, children: Sequence[int], g: Mapping) -> bool:
        pool = self._pool
        if pool is not None and len(children) >= 2 and self._fan_out_at(node):
            # Sibling checks are independent given g; all() over the
            # in-order results keeps the answer (trivially) deterministic.
            # The sequential path's early exit is traded for overlap.
            checks = pool.map_tasks(
                lambda child: self._child_handled(node, child, g), children
            )
            return all(checks)
        for child in children:
            if not self._child_handled(node, child, g):
                return False
        return True

    def _fan_out_at(self, node: int) -> bool:
        """Fan out at ``node``?  The planner's marking when profiled
        (``method="auto"``), else the same ≥2-children criterion (already
        established by the caller)."""
        if self.tree_profile is not None:
            return node in self.tree_profile.parallel_safe_nodes
        return True

    def _child_handled(self, node: int, child: int, g: Mapping) -> bool:
        p = self.p
        shared = p.node_variables(node) & p.node_variables(child)
        sigma_child = g.restrict(shared)
        if child in self.mandatory:
            return self.node_in(child, sigma_child)
        if child in self.allowed:
            return self.node_in(child, sigma_child) or self.blocked(
                child, sigma_child
            )
        return self.blocked(child, sigma_child)


def _blank_except(a: Atom, v: Variable) -> Atom:
    """``a`` with every variable other than ``v`` replaced by a fresh one,
    so that :meth:`Database.match` only enforces constants and the repeated
    positions of ``v``."""
    fresh = 0
    args = []
    for t in a.args:
        if isinstance(t, Variable) and t != v:
            args.append(Variable("__blank_%d" % fresh))
            fresh += 1
        else:
            args.append(t)
    return Atom(a.relation, args)
