#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file produced by the repro tracer.

Usage::

    python scripts/validate_trace.py trace.json

Exits non-zero (listing the problems) when the file is missing, is not
valid JSON, contains no events, or contains malformed events — the CI
trace-smoke job uses this to fail fast when the instrumentation regresses.
"""

import json
import os
import sys

# Runnable straight from a checkout, before any `pip install -e .`.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.telemetry.export import validate_chrome_trace  # noqa: E402


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        print("error: cannot read %s: %s" % (path, exc), file=sys.stderr)
        return 1
    except ValueError as exc:
        print("error: %s is not valid JSON: %s" % (path, exc), file=sys.stderr)
        return 1
    problems = validate_chrome_trace(payload)
    if problems:
        for problem in problems:
            print("error: %s: %s" % (path, problem), file=sys.stderr)
        return 1
    events = payload["traceEvents"] if isinstance(payload, dict) else payload
    print("%s: OK (%d trace events)" % (path, len(events)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
