#!/usr/bin/env python
"""Validate observability artifacts produced by the repro telemetry.

Usage::

    python scripts/validate_trace.py trace.json
    python scripts/validate_trace.py --format obslog query_log.jsonl
    python scripts/validate_trace.py profile.speedscope.json
    python scripts/validate_trace.py profile.folded

Four formats:

* ``chrome`` — a Chrome trace-event JSON file from the tracer.  Known
  span attributes (``kernel``, ``engine``, ``trace_id``, ``est_rows``,
  ``q_error``, … — see ``repro.telemetry.export.SPAN_ATTR_TYPES``) are
  type-checked; attributes the validator does not know about are
  accepted, so instrumentation can grow without breaking old validators;
* ``obslog`` — a JSON-lines structured query log from
  :class:`repro.telemetry.obslog.QueryLog`;
* ``speedscope`` — a sampled profile from
  :mod:`repro.telemetry.profiler` (``repro profile --speedscope``,
  ``repro run --profile-out``);
* ``folded`` — Brendan-Gregg folded stacks from ``repro profile
  --folded`` (flamegraph.pl input).

``--format auto`` (the default) picks ``obslog`` for ``.jsonl`` files,
``folded`` for ``.folded``/``.collapsed`` files, ``speedscope`` when the
filename contains ``speedscope``, and ``chrome`` otherwise.  Exits
non-zero (listing the problems) when the file is missing, malformed, or
empty — the CI trace-smoke and profile-smoke jobs use this to fail fast
when the instrumentation regresses.
"""

import argparse
import json
import os
import sys

# Runnable straight from a checkout, before any `pip install -e .`.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.telemetry.export import SPAN_ATTR_TYPES, validate_chrome_trace  # noqa: E402
from repro.telemetry.obslog import validate_obslog  # noqa: E402
from repro.telemetry.profiler import validate_folded, validate_speedscope  # noqa: E402


def validate_chrome_file(path):
    """(problems, summary) for a Chrome trace-event JSON file."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        return ["cannot read: %s" % exc], None
    except ValueError as exc:
        return ["not valid JSON: %s" % exc], None
    problems = validate_chrome_trace(payload)
    if problems:
        return problems, None
    events = payload["traceEvents"] if isinstance(payload, dict) else payload
    typed = sum(
        1
        for event in events
        if isinstance(event, dict)
        and isinstance(event.get("args"), dict)
        and any(attr in SPAN_ATTR_TYPES for attr in event["args"])
    )
    return [], "%d trace events, %d with typed attributes" % (len(events), typed)


def validate_obslog_file(path):
    """(problems, summary) for a JSON-lines query log."""
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as exc:
        return ["cannot read: %s" % exc], None
    problems = validate_obslog(lines)
    if problems:
        return problems, None
    count = sum(1 for line in lines if line.strip())
    return [], "%d query events" % count


def validate_speedscope_file(path):
    """(problems, summary) for a speedscope-JSON sampled profile."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        return ["cannot read: %s" % exc], None
    except ValueError as exc:
        return ["not valid JSON: %s" % exc], None
    problems = validate_speedscope(payload)
    if problems:
        return problems, None
    profiles = payload.get("profiles", [])
    samples = sum(len(profile.get("samples", [])) for profile in profiles)
    frames = len(payload.get("shared", {}).get("frames", []))
    extra = (
        ", trace_id %s" % payload["trace_id"]
        if payload.get("trace_id") else ""
    )
    return [], "%d profile(s), %d sample(s) over %d frame(s)%s" % (
        len(profiles), samples, frames, extra,
    )


def validate_folded_file(path):
    """(problems, summary) for a folded-stacks text file."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        return ["cannot read: %s" % exc], None
    problems = validate_folded(text)
    if problems:
        return problems, None
    lines = [line for line in text.splitlines() if line.strip()]
    total = sum(int(line.rsplit(None, 1)[1]) for line in lines)
    return [], "%d folded stack(s), %d sample(s)" % (len(lines), total)


_VALIDATORS = {
    "chrome": validate_chrome_file,
    "obslog": validate_obslog_file,
    "speedscope": validate_speedscope_file,
    "folded": validate_folded_file,
}


def detect_format(path):
    """The format implied by ``path``'s name (the ``--format auto`` rule)."""
    name = os.path.basename(path).lower()
    if name.endswith(".jsonl"):
        return "obslog"
    if name.endswith((".folded", ".collapsed")):
        return "folded"
    if "speedscope" in name:
        return "speedscope"
    return "chrome"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="validate_trace.py",
        description="Validate a Chrome trace, JSON-lines query log, "
                    "speedscope profile, or folded stacks.",
    )
    parser.add_argument("path", help="file to validate")
    parser.add_argument(
        "--format", choices=("auto",) + tuple(sorted(_VALIDATORS)),
        default="auto",
        help="file format (auto: .jsonl → obslog, .folded/.collapsed → "
             "folded, *speedscope* → speedscope, else chrome)",
    )
    args = parser.parse_args(argv)

    fmt = args.format
    if fmt == "auto":
        fmt = detect_format(args.path)
    problems, summary = _VALIDATORS[fmt](args.path)
    if problems:
        for problem in problems:
            print("error: %s: %s" % (args.path, problem), file=sys.stderr)
        return 1
    print("%s: OK (%s)" % (args.path, summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
