#!/usr/bin/env python
"""Check that relative markdown links — and their anchors — resolve.

Usage::

    python scripts/check_links.py [FILE.md ...]

With no arguments, checks every ``*.md`` at the repository root plus
``docs/*.md``.  For each file, every inline link and image
(``[text](target)`` / ``![alt](target)``) and every reference definition
(``[label]: target``) is extracted, and:

* relative file targets are checked to exist on disk, resolved relative
  to the file containing the link;
* intra-document anchors (``#section``) are checked against the file's
  own headings, slugified the way GitHub renders them;
* cross-document anchors (``OTHER.md#section``) are checked against the
  target file's headings.

External schemes (``http(s)``, ``mailto``) are skipped — this is an
offline checker, CI must not depend on the network.

Exit status: 0 when every relative link and anchor resolves, 1 otherwise
(each failure is printed as ``file:line: broken link -> target`` or
``file:line: broken anchor -> target``).
"""

import glob
import os
import re
import sys

#: Inline links/images: [text](target "optional title")
_INLINE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference definitions: [label]: target
_REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$")
#: Schemes that are not filesystem paths.
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

_FENCE = re.compile(r"^\s*(```|~~~)")

#: ATX headings: ## Title  (optional trailing ###)
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
#: Inline markdown stripped from heading text before slugifying.
_MD_LINK = re.compile(r"\[([^\]]*)\]\([^)]*\)")
#: Characters GitHub drops from slugs (everything that is not a word
#: character, hyphen, or space; ``\w`` keeps underscores).
_SLUG_DROP = re.compile(r"[^\w\- ]")
#: Explicit HTML anchors: <a id="..."> / <a name="...">
_HTML_ANCHOR = re.compile(r"<a\s+(?:id|name)=[\"']([^\"']+)[\"']")


def slugify(text):
    """The GitHub anchor slug of a heading: markdown stripped, lowered,
    punctuation dropped, spaces hyphenated."""
    text = _MD_LINK.sub(r"\1", text)
    text = text.replace("`", "").replace("*", "")
    text = _SLUG_DROP.sub("", text.strip().lower())
    return text.replace(" ", "-")


def heading_anchors(path):
    """Every anchor ``path`` defines: slugified headings (duplicates get
    ``-1``, ``-2``, ... suffixes, as GitHub numbers them) plus explicit
    ``<a id=...>`` anchors."""
    anchors = set()
    seen = {}
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if _FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _HTML_ANCHOR.finditer(line):
                anchors.add(match.group(1))
            match = _HEADING.match(line)
            if not match:
                continue
            slug = slugify(match.group(2))
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            anchors.add(slug if count == 0 else "%s-%d" % (slug, count))
    return anchors


def iter_links(path):
    """Yield ``(line_number, target)`` for every link in ``path``,
    skipping fenced code blocks (their brackets are code, not links)."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            if _FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _INLINE.finditer(line):
                yield number, match.group(1)
            match = _REFERENCE.match(line)
            if match:
                yield number, match.group(1)


def is_checkable(target):
    """Relative filesystem targets and anchors: no external schemes."""
    return bool(target) and not _EXTERNAL.match(target)


class _AnchorCache(dict):
    """``path -> anchor set``, parsed lazily once per target file."""

    def anchors(self, path):
        if path not in self:
            self[path] = heading_anchors(path)
        return self[path]


def check_file(path, cache=None):
    """Failures in ``path`` as ``(line, kind, target)`` tuples, where
    ``kind`` is ``"link"`` (missing file) or ``"anchor"``."""
    cache = cache if cache is not None else _AnchorCache()
    base = os.path.dirname(os.path.abspath(path))
    failures = []
    for number, target in iter_links(path):
        if not is_checkable(target):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                failures.append((number, "link", target))
                continue
        else:
            resolved = os.path.abspath(path)
        if fragment and resolved.endswith(".md") and os.path.isfile(resolved):
            if fragment not in cache.anchors(resolved):
                failures.append((number, "anchor", target))
    return failures


def default_files():
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir)
    files = sorted(glob.glob(os.path.join(root, "*.md")))
    files += sorted(glob.glob(os.path.join(root, "docs", "*.md")))
    return files


def main(argv=None):
    files = list(argv) if argv else default_files()
    missing = [f for f in files if not os.path.exists(f)]
    if missing:
        for f in missing:
            print("no such file: %s" % f, file=sys.stderr)
        return 1
    failures = 0
    checked = 0
    cache = _AnchorCache()
    for path in files:
        checked += 1
        for number, kind, target in check_file(path, cache):
            failures += 1
            print(
                "%s:%d: broken %s -> %s" % (path, number, kind, target),
                file=sys.stderr,
            )
    if failures:
        print(
            "%d broken link(s)/anchor(s) in %d file(s)" % (failures, checked),
            file=sys.stderr,
        )
        return 1
    print("checked %d file(s): all relative links and anchors resolve" % checked)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
