#!/usr/bin/env python
"""Check that relative markdown links resolve to real files.

Usage::

    python scripts/check_links.py [FILE.md ...]

With no arguments, checks every ``*.md`` at the repository root plus
``docs/*.md``.  For each file, every inline link and image
(``[text](target)`` / ``![alt](target)``) and every reference definition
(``[label]: target``) is extracted; targets are checked to exist on disk,
resolved relative to the file containing the link.  External schemes
(``http(s)``, ``mailto``) and pure intra-page anchors (``#section``) are
skipped — this is an offline checker, CI must not depend on the network.

Exit status: 0 when every relative link resolves, 1 otherwise (each broken
link is printed as ``file:line: broken link -> target``).
"""

import glob
import os
import re
import sys

#: Inline links/images: [text](target "optional title")
_INLINE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference definitions: [label]: target
_REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$")
#: Schemes that are not filesystem paths.
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

_FENCE = re.compile(r"^\s*(```|~~~)")


def iter_links(path):
    """Yield ``(line_number, target)`` for every link in ``path``,
    skipping fenced code blocks (their brackets are code, not links)."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            if _FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _INLINE.finditer(line):
                yield number, match.group(1)
            match = _REFERENCE.match(line)
            if match:
                yield number, match.group(1)


def is_checkable(target):
    """Relative filesystem targets only: no schemes, no pure anchors."""
    return bool(target) and not _EXTERNAL.match(target) and not target.startswith("#")


def check_file(path):
    """Broken links in ``path`` as ``(line, target)`` pairs."""
    base = os.path.dirname(os.path.abspath(path))
    broken = []
    for number, target in iter_links(path):
        if not is_checkable(target):
            continue
        resolved = os.path.normpath(
            os.path.join(base, target.split("#", 1)[0])
        )
        if not os.path.exists(resolved):
            broken.append((number, target))
    return broken


def default_files():
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir)
    files = sorted(glob.glob(os.path.join(root, "*.md")))
    files += sorted(glob.glob(os.path.join(root, "docs", "*.md")))
    return files


def main(argv=None):
    files = list(argv) if argv else default_files()
    missing = [f for f in files if not os.path.exists(f)]
    if missing:
        for f in missing:
            print("no such file: %s" % f, file=sys.stderr)
        return 1
    failures = 0
    checked = 0
    for path in files:
        broken = check_file(path)
        checked += 1
        for number, target in broken:
            failures += 1
            print(
                "%s:%d: broken link -> %s" % (path, number, target),
                file=sys.stderr,
            )
    if failures:
        print("%d broken link(s) in %d file(s)" % (failures, checked), file=sys.stderr)
        return 1
    print("checked %d file(s): all relative links resolve" % checked)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
