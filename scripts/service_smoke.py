#!/usr/bin/env python
"""Smoke-test a running `repro serve` instance with mixed tenant traffic.

Usage::

    python scripts/service_smoke.py http://127.0.0.1:9311

Expects the two-tenant CI configuration (see the `service-smoke` job in
.github/workflows/ci.yml): tenant **alpha** (key ``alpha-key``, gold
tier) and tenant **beta** (key ``beta-key``, a strict tier with
``max_concurrency: 1``, ~1 ms queue patience, and a hard
intermediate-rows budget).  The driver:

1. fires concurrent mixed traffic from both tenants and checks the
   served responses (answers, tenant stamps, trace ids);
2. sends one over-budget query as beta and checks the ``429`` budget
   response;
3. storms beta's single-slot tier with concurrent clients and checks
   that at least one request was shed with ``429`` + ``Retry-After``;
4. asserts the whole story is visible in ``/metrics`` and ``/healthz``
   (per-tenant admitted/shed counters, cache series).

Exits 0 when every check passes, 1 otherwise.  Network access is only to
the given base URL — this is an offline CI check.
"""

import json
import sys
import threading
import urllib.error
import urllib.request

SMALL_QUERY = 'SELECT ?x WHERE { ?x recorded_by "Caribou" }'
WIDE_QUERY = "SELECT ?x ?y WHERE { ?x recorded_by ?y }"
OPT_QUERY = (
    "SELECT ?x ?y ?z WHERE { ?x recorded_by ?y "
    "OPTIONAL { ?x NME_rating ?z } }"
)

FAILURES = []


def check(condition, message):
    status = "ok" if condition else "FAIL"
    print("  [%s] %s" % (status, message))
    if not condition:
        FAILURES.append(message)


def request(base, path, payload=None, key=None):
    """(status, parsed JSON body, headers) for one exchange."""
    headers = {}
    data = None
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    if key is not None:
        headers["X-Api-Key"] = key
    req = urllib.request.Request(base + path, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def fan_out(base, spec):
    """Run the (path, payload, key) triples concurrently."""
    results = [None] * len(spec)

    def fire(i, path, payload, key):
        results[i] = request(base, path, payload, key=key)

    threads = [
        threading.Thread(target=fire, args=(i,) + entry)
        for i, entry in enumerate(spec)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


def main(argv):
    if len(argv) != 1:
        print(__doc__)
        return 1
    base = argv[0].rstrip("/")

    print("1. mixed concurrent traffic (8 clients, 2 tenants)")
    spec = [("/query", {"query": OPT_QUERY}, "alpha-key")] * 5
    spec += [("/query", {"query": SMALL_QUERY}, "beta-key")] * 2
    spec += [("/explain", {"query": WIDE_QUERY}, "alpha-key")]
    results = fan_out(base, spec)
    alpha = [r for r, entry in zip(results, spec) if entry[2] == "alpha-key"]
    beta = [r for r, entry in zip(results, spec) if entry[2] == "beta-key"]
    check(all(status == 200 for status, _, _ in alpha),
          "all alpha requests served (got %s)"
          % [status for status, _, _ in alpha])
    check(all(body.get("tenant") == "alpha" for _, body, _ in alpha),
          "alpha responses stamped with the tenant")
    check(any(body.get("trace_id") for _, body, _ in alpha),
          "evaluation responses carry a trace_id")
    check(any(status == 200 for status, _, _ in beta),
          "at least one beta request served through its single slot")
    check(all(status in (200, 429) for status, _, _ in beta),
          "beta saw only 200s or clean sheds")

    print("2. over-budget query (beta's hard intermediate-rows limit)")
    status, body, headers = request(
        base, "/query", {"query": WIDE_QUERY}, key="beta-key"
    )
    check(status == 429, "over-budget query answered 429 (got %d)" % status)
    check("budget" in body.get("error", ""),
          "429 body names the budget: %r" % body.get("error"))
    check("Retry-After" in headers, "budget 429 carries Retry-After")

    print("3. load shedding (30 concurrent clients vs. beta's 1 slot)")
    storm = fan_out(
        base, [("/query", {"query": SMALL_QUERY}, "beta-key")] * 30
    )
    shed = [
        (status, body, headers)
        for status, body, headers in storm
        if status == 429 and body.get("scope")
    ]
    served = [status for status, _, _ in storm if status == 200]
    check(len(shed) >= 1,
          "at least one request shed (%d shed, %d served)"
          % (len(shed), len(served)))
    check(all("Retry-After" in headers for _, _, headers in shed),
          "every shed response carries Retry-After")
    check(all(body["scope"] in ("tenant", "global") for _, body, _ in shed),
          "shed responses name the saturated scope")

    print("4. the story is visible in /metrics and /healthz")
    with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
        metrics = resp.read().decode("utf-8")
    check('repro_service_admitted{tenant="alpha"}' in metrics,
          "per-tenant admitted counter exported")
    check('repro_service_shed{scope="tenant",tenant="beta"}' in metrics
          or 'repro_service_shed{scope="global",tenant="beta"}' in metrics,
          "per-tenant shed counter exported")
    check('repro_service_cache_misses{tenant="alpha"}' in metrics,
          "per-tenant cache series exported")
    status, health, _ = request(base, "/healthz")
    admission = health["service"]["admission"]
    check(admission["admitted_total"] >= 8,
          "healthz admitted_total >= 8 (got %d)" % admission["admitted_total"])
    check(admission["shed_total"] >= 1,
          "healthz shed_total >= 1 (got %d)" % admission["shed_total"])
    status, tenants, _ = request(base, "/tenants")
    check("alpha-key" not in json.dumps(tenants),
          "/tenants never exposes raw API keys")

    if FAILURES:
        print("\n%d check(s) failed" % len(FAILURES))
        return 1
    print("\nservice smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
