#!/usr/bin/env python
"""Run the named benchmarks, extend the trajectory, fail on regressions.

Usage::

    python scripts/bench_regress.py [--out BENCH_eval.json]
                                    [--threshold PCT] [--repeats N]
                                    [--names fig1.query thm6.dp ...]
                                    [--inject NAME=FACTOR] [--no-append]
                                    [--jobs J] [--shards S]

Runs the benchmarks in :data:`repro.benchharness.regress.BENCHMARKS`,
appends one trajectory point to ``--out``, and compares it against the
previous point: any benchmark more than ``--threshold`` percent slower
exits 1.  ``--inject NAME=FACTOR`` multiplies one benchmark's measured
seconds before the comparison — CI uses it to prove the gate actually
fails on a slowdown.  ``--no-append`` compares without rewriting the file.
``--jobs J`` (J > 1) additionally sweeps batched parallel evaluation at
1..J workers and records the speedup under the point's ``parallel`` key
(informational — the speedup is hardware-dependent, so it is never gated
here; ``benchmarks/bench_parallel_scaling.py`` asserts it on multi-core
hosts).  ``--shards S`` (S > 1) likewise sweeps the distributed
Yannakakis shard program at 1..S shards and records the speedup under
the point's ``dist`` key (informational here too;
``benchmarks/bench_dist_scaling.py`` asserts the CPU-gated expectation).
"""

import argparse
import os
import sys

# Runnable straight from a checkout, before any `pip install -e .`.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.benchharness.regress import (  # noqa: E402
    BENCHMARKS,
    DEFAULT_MIN_SECONDS,
    DEFAULT_THRESHOLD_PCT,
    append_point,
    build_point,
    compare_backends,
    compare_points,
    inject_regression,
    load_trajectory,
    measure_dist_scaling,
    measure_parallel_scaling,
)
from repro.storage import BACKEND_KINDS  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="bench_regress.py",
        description="Benchmark trajectory tracking with a regression gate.",
    )
    parser.add_argument(
        "--out", default="BENCH_eval.json",
        help="trajectory file to extend (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD_PCT,
        help="fail when a benchmark slows by more than this percent "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        help="noise floor: skip comparisons under this timing "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N timing repeats (default: %(default)s)",
    )
    parser.add_argument(
        "--names", nargs="*", default=None, metavar="NAME",
        help="benchmarks to run (default: all of %s)"
             % ", ".join(sorted(BENCHMARKS)),
    )
    parser.add_argument(
        "--inject", default=None, metavar="NAME=FACTOR",
        help="multiply one benchmark's seconds before comparing "
             "(synthetic-regression self-test)",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="compare against the trajectory without appending the point",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="J",
        help="also sweep batched evaluation at 1..J workers and record "
             "the speedup (default: 1 = skip)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="S",
        help="also sweep distributed evaluation at 1..S shards and record "
             "the speedup (default: 1 = skip)",
    )
    parser.add_argument(
        "--backend", default="memory", choices=sorted(BACKEND_KINDS),
        help="storage backend to run the benchmarks against; points are "
             "compared only against previous points of the same backend "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--compare-backends", action="store_true",
        help="print side-by-side memory-vs-sqlite rows instead of the "
             "regression gate (informational, never appended or gated)",
    )
    args = parser.parse_args(argv)

    if args.compare_backends:
        rows = compare_backends(names=args.names, repeats=args.repeats)
        print("%-20s %14s %14s %8s" % ("benchmark", "memory", "sqlite", "ratio"))
        for row in rows:
            print(
                "%-20s %13.6fs %13.6fs %7.2fx"
                % (row["name"], row["memory_seconds"],
                   row["sqlite_seconds"], row["ratio"])
            )
        return 0

    point = build_point(
        names=args.names, repeats=args.repeats, backend=args.backend
    )
    if args.jobs > 1:
        jobs_list = sorted({1, *[j for j in (2, args.jobs) if j <= args.jobs]})
        point["parallel"] = measure_parallel_scaling(
            jobs_list=jobs_list, repeats=args.repeats
        )
        for jobs in sorted(point["parallel"]["seconds"]):
            print(
                "parallel jobs=%-3d %.4fs  %.2fx"
                % (jobs, point["parallel"]["seconds"][jobs],
                   point["parallel"]["speedup"][jobs])
            )
    if args.shards > 1:
        shards_list = sorted({1, *[s for s in (2, args.shards) if s <= args.shards]})
        point["dist"] = measure_dist_scaling(
            shards_list=shards_list, repeats=args.repeats
        )
        for shards in sorted(point["dist"]["seconds"]):
            print(
                "dist shards=%-3d %.4fs  %.2fx"
                % (shards, point["dist"]["seconds"][shards],
                   point["dist"]["speedup"][shards])
            )
    if args.inject:
        name, _, factor = args.inject.partition("=")
        if not factor:
            parser.error("--inject expects NAME=FACTOR, got %r" % args.inject)
        inject_regression(point, name, float(factor))

    trajectory = load_trajectory(args.out)
    # Compare like with like: the most recent point of the same backend
    # (pre-backend points in old trajectories count as "memory").
    previous = next(
        (
            pt
            for pt in reversed(trajectory["points"])
            if pt.get("backend", "memory") == args.backend
        ),
        None,
    )

    for name, bench in sorted(point["benchmarks"].items()):
        print("%-20s %.6fs" % (name, bench["seconds"]))

    regressions = []
    if previous is not None:
        regressions = compare_points(
            previous, point,
            threshold_pct=args.threshold, min_seconds=args.min_seconds,
        )

    if not args.no_append:
        doc = append_point(args.out, point)
        print("trajectory: %s (%d points)" % (args.out, len(doc["points"])))
    if previous is None:
        print("no previous point: baseline recorded, nothing to compare")
        return 0
    if regressions:
        for regression in regressions:
            print("REGRESSION %r" % regression, file=sys.stderr)
        print(
            "%d benchmark(s) regressed beyond %.1f%%"
            % (len(regressions), args.threshold),
            file=sys.stderr,
        )
        return 1
    print("no regressions beyond %.1f%%" % args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
